//! Embedding tables for DLRM inference: quantisation, pruning, pooling and
//! the on-SM layout.
//!
//! DLRM models map categorical features to dense vectors through embedding
//! tables; at inference time the tables are row-wise quantised (int8/int4,
//! paper §A.5 and Guan et al. 2019), optionally pruned with a mapping tensor
//! (§4.5), and read with a *pooling factor* of rows per query which are
//! dequantised and summed (SparseLengthsSum / EmbeddingBag).
//!
//! This crate owns everything about the tables themselves:
//!
//! * [`TableDescriptor`] / [`TableKind`] — the logical description (rows,
//!   dimension, pooling factor, user vs item) used for capacity math.
//! * [`QuantScheme`], [`quantize_row`], [`dequantize_row`] — row-wise
//!   quantisation with per-row scale/bias — plus the fused
//!   [`accumulate_row`] kernel the zero-allocation pooling path uses.
//! * [`kernels`] — SSE2/AVX2 vector implementations of the fused
//!   dequant-accumulate paths with runtime dispatch ([`PoolKernel`]),
//!   bit-identical to the scalar fallback, plus software prefetch.
//! * [`RowArena`] — one contiguous fixed-stride buffer per table, replacing
//!   per-row heap allocations.
//! * [`EmbeddingTable`] — materialised quantised rows (deterministically
//!   generated for experiments), backed by a [`RowArena`].
//! * [`MappingTensor`] / [`PrunedTable`] — pruning and de-pruning at load
//!   time (paper Algorithm 2).
//! * [`pooling`] — dequantise-and-sum pooling used by the inference engine.
//! * [`SmLayout`] — byte layout of tables on the slow-memory devices.
//!
//! # Example
//!
//! ```
//! use embedding::{EmbeddingTable, QuantScheme, TableDescriptor, TableKind};
//!
//! let desc = TableDescriptor::new(0, "user_topics", TableKind::User, 1000, 32)
//!     .with_pooling_factor(20)
//!     .with_quant(QuantScheme::Int8);
//! let table = EmbeddingTable::generate(&desc, 42);
//! let row = table.dequantized_row(17).unwrap();
//! assert_eq!(row.len(), 32);
//! ```

// `deny` rather than `forbid`: the `kernels` module opts back in locally
// for the `core::arch` SIMD intrinsics behind runtime feature detection.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod arena;
mod error;
pub mod kernels;
mod layout;
pub mod pooling;
mod pruning;
mod quant;
mod table;

pub use arena::RowArena;
pub use error::EmbeddingError;
pub use kernels::{PoolKernel, SelectedKernel};
pub use layout::{SmLayout, TablePlacement};
pub use pruning::{DepruneReport, MappingTensor, PrunedTable};
pub use quant::{
    accumulate_row, accumulate_row_weighted, dequantize_row, quantize_row, QuantScheme,
};
pub use table::{EmbeddingTable, TableDescriptor, TableId, TableKind};

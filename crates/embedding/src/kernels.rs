//! SIMD fused dequant-accumulate pooling kernels with runtime dispatch.
//!
//! Every row served — from the FM table, the row cache, the shared tier or
//! an SM completion — flows through `accumulate_row` /
//! `accumulate_row_weighted`, so pooling arithmetic sits on 100 % of the
//! hot path. This module provides explicit SSE2 and AVX2 implementations
//! (via [`core::arch::x86_64`], selected behind
//! [`is_x86_feature_detected!`] at runtime) of the six fused
//! dequant-accumulate paths — int8 / int4 / fp32, unweighted and weighted —
//! with the scalar loops as the portable fallback on every other
//! architecture.
//!
//! # Bit-identity contract
//!
//! `accumulate_row` is an **element-wise add into `out`**, not a horizontal
//! reduction, so the vector kernels can and must stay bit-identical to the
//! scalar reference:
//!
//! * same arithmetic: `code as f32 * scale + bias`, then one separate
//!   accumulate add (three roundings for the weighted form: dequantise,
//!   scale by the weight, accumulate) — **no FMA contraction** anywhere;
//! * vector lanes map one-to-one to output positions (lane *i* only ever
//!   touches `out[i]`);
//! * a scalar tail handles odd dimensions and int4 nibble remainders with
//!   the exact same per-element expression.
//!
//! Both `u8` and 4-bit codes convert to `f32` exactly, and x86 packed
//! multiply/add round identically to their scalar counterparts, so
//! `tests/kernel_equivalence.rs` asserts `to_bits()` equality between every
//! vector kernel and scalar across schemes, dims, weights, unaligned row
//! buffers and NaN/infinity scale-bias parameters.
//!
//! # Dispatch
//!
//! [`PoolKernel`] is the configuration knob (`Auto` picks the widest
//! supported kernel); [`PoolKernel::resolve`] turns it into a
//! [`SelectedKernel`], the only type the fused entry points accept.
//! `SelectedKernel` is deliberately opaque: the SSE2/AVX2 variants can only
//! be constructed after a successful `is_x86_feature_detected!` check, so
//! holding one is proof the host supports it and the `unsafe`
//! `#[target_feature]` calls below are sound. The process-wide default
//! ([`auto_kernel`]) honours the `SDM_POOL_KERNEL` environment variable
//! (`auto` / `scalar` / `sse2` / `avx2`, used by `ci.sh`'s force-scalar
//! leg), falling back to `Auto` resolution.
#![allow(unsafe_code)]

use crate::error::EmbeddingError;
use crate::quant::{row_params, QuantScheme};
use std::fmt;
use std::sync::OnceLock;

/// Pooling-kernel selection knob, threaded through `SdmConfig`.
///
/// `Auto` resolves to the widest kernel the host supports; the explicit
/// variants force one implementation for A/B comparisons and CI legs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PoolKernel {
    /// Pick the widest supported kernel at runtime (AVX2 → SSE2 → scalar).
    #[default]
    Auto,
    /// Force the portable scalar loops.
    Scalar,
    /// Force the 4-lane SSE2 kernels (falls back to scalar if unsupported).
    Sse2,
    /// Force the 8-lane AVX2 kernels (falls back to scalar if unsupported).
    Avx2,
}

impl PoolKernel {
    /// Parses a kernel name as accepted by the `SDM_POOL_KERNEL`
    /// environment variable: `auto`, `scalar`, `sse2` or `avx2`
    /// (ASCII case-insensitive). Returns `None` for anything else.
    pub fn from_name(name: &str) -> Option<PoolKernel> {
        if name.eq_ignore_ascii_case("auto") {
            Some(PoolKernel::Auto)
        } else if name.eq_ignore_ascii_case("scalar") {
            Some(PoolKernel::Scalar)
        } else if name.eq_ignore_ascii_case("sse2") {
            Some(PoolKernel::Sse2)
        } else if name.eq_ignore_ascii_case("avx2") {
            Some(PoolKernel::Avx2)
        } else {
            None
        }
    }

    /// Whether this selection can actually run on the current host.
    ///
    /// `Auto` and `Scalar` are always supported; `Sse2`/`Avx2` require the
    /// matching CPU feature (and an x86_64 build at all).
    pub fn is_supported(self) -> bool {
        match self {
            PoolKernel::Auto | PoolKernel::Scalar => true,
            PoolKernel::Sse2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("sse2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            PoolKernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }

    /// Resolves the knob into a concrete, runnable kernel.
    ///
    /// `Auto` picks the widest detected kernel. An explicit `Sse2`/`Avx2`
    /// request on a host without that feature resolves to `Scalar` (the
    /// result is always safe to run); `SdmConfig::validate` rejects such
    /// configurations up front so A/B runs cannot silently measure the
    /// fallback.
    pub fn resolve(self) -> SelectedKernel {
        #[cfg(target_arch = "x86_64")]
        {
            match self {
                PoolKernel::Auto => {
                    if is_x86_feature_detected!("avx2") {
                        return SelectedKernel(Arch::Avx2);
                    }
                    if is_x86_feature_detected!("sse2") {
                        return SelectedKernel(Arch::Sse2);
                    }
                }
                PoolKernel::Sse2 => {
                    if is_x86_feature_detected!("sse2") {
                        return SelectedKernel(Arch::Sse2);
                    }
                }
                PoolKernel::Avx2 => {
                    if is_x86_feature_detected!("avx2") {
                        return SelectedKernel(Arch::Avx2);
                    }
                }
                PoolKernel::Scalar => {}
            }
        }
        SelectedKernel(Arch::Scalar)
    }

    /// Resolves like [`PoolKernel::resolve`], except that `Auto` defers to
    /// the process-wide [`auto_kernel`] and therefore honours the
    /// `SDM_POOL_KERNEL` environment override. Explicitly named kernels
    /// ignore the environment — a config that picks a kernel beats the
    /// ambient escape hatch. This is what the serving stack calls at
    /// construction time.
    pub fn resolve_default(self) -> SelectedKernel {
        match self {
            PoolKernel::Auto => auto_kernel(),
            explicit => explicit.resolve(),
        }
    }
}

impl fmt::Display for PoolKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolKernel::Auto => f.write_str("auto"),
            PoolKernel::Scalar => f.write_str("scalar"),
            PoolKernel::Sse2 => f.write_str("sse2"),
            PoolKernel::Avx2 => f.write_str("avx2"),
        }
    }
}

/// A concrete kernel choice, produced by [`PoolKernel::resolve`].
///
/// The inner representation is private on purpose: an SSE2/AVX2 value can
/// only come out of a successful feature-detection check, which is the
/// safety invariant the `#[target_feature]` dispatch below relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SelectedKernel(Arch);

/// The concrete implementations. SAFETY invariant: `Sse2`/`Avx2` values are
/// only ever constructed by [`PoolKernel::resolve`] after
/// `is_x86_feature_detected!` confirmed the feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Arch {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Sse2,
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl SelectedKernel {
    /// The portable scalar kernel (always available).
    pub const SCALAR: SelectedKernel = SelectedKernel(Arch::Scalar);

    /// Kernel name for logs and bench JSON: `scalar`, `sse2` or `avx2`.
    pub fn name(self) -> &'static str {
        match self.0 {
            Arch::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Arch::Sse2 => "sse2",
            #[cfg(target_arch = "x86_64")]
            Arch::Avx2 => "avx2",
        }
    }

    /// True for the vector kernels, false for scalar.
    pub fn is_simd(self) -> bool {
        self.0 != Arch::Scalar
    }
}

impl fmt::Display for SelectedKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide default kernel used by the plain `accumulate_row` /
/// `pool_quantized_into` entry points.
///
/// Resolved once: the `SDM_POOL_KERNEL` environment variable (if set to a
/// valid kernel name) overrides `Auto` detection, which is how `ci.sh`
/// forces the scalar fallback through the whole test suite on AVX2 runners.
pub fn auto_kernel() -> SelectedKernel {
    static AUTO: OnceLock<SelectedKernel> = OnceLock::new();
    *AUTO.get_or_init(|| {
        std::env::var("SDM_POOL_KERNEL")
            .ok()
            .and_then(|name| PoolKernel::from_name(&name))
            .unwrap_or(PoolKernel::Auto)
            .resolve()
    })
}

/// Fused dequantise-and-accumulate of one row into `out` with an explicit
/// kernel: `out[i] += code[i] as f32 * scale + bias` (int8/int4) or
/// `out[i] += row[i]` (fp32). Bit-identical across kernels.
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] when the buffer length does not
/// match `scheme.row_bytes(out.len())`.
pub fn accumulate_row_with(
    kernel: SelectedKernel,
    buf: &[u8],
    scheme: QuantScheme,
    out: &mut [f32],
) -> Result<(), EmbeddingError> {
    dispatch::<false>(kernel, buf, scheme, 1.0, out)
}

/// Weighted variant of [`accumulate_row_with`]:
/// `out[i] += (code[i] as f32 * scale + bias) * weight`
/// (SparseLengthsWeightedSum). Bit-identical across kernels.
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] for a wrong buffer length.
pub fn accumulate_row_weighted_with(
    kernel: SelectedKernel,
    buf: &[u8],
    scheme: QuantScheme,
    weight: f32,
    out: &mut [f32],
) -> Result<(), EmbeddingError> {
    dispatch::<true>(kernel, buf, scheme, weight, out)
}

/// Prefetches the leading cache lines of a row buffer into L1.
///
/// Used to hide the memory latency of the *next* row while the current one
/// is being accumulated (the arena layouts keep rows contiguous, so the
/// first few lines cover a typical 64-dim int8/int4 row plus parameters).
/// A pure hint: no-op on non-x86_64 and never a memory access, so it cannot
/// fault and has no effect on results.
#[inline]
pub fn prefetch_row(bytes: &[u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        const LINE: usize = 64;
        const MAX_LINES: usize = 4;
        let lines = bytes.len().div_ceil(LINE).min(MAX_LINES);
        for line in 0..lines {
            // SAFETY: `line * LINE` is strictly less than `bytes.len()`, so
            // the pointer stays inside the allocation; prefetch is a hint
            // and performs no actual memory access.
            unsafe { _mm_prefetch::<_MM_HINT_T0>(bytes.as_ptr().add(line * LINE).cast()) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = bytes;
    }
}

/// Shared validation + scheme/kernel dispatch. `W` selects the weighted
/// forms at compile time so the unweighted hot loops never pay the extra
/// multiply.
fn dispatch<const W: bool>(
    kernel: SelectedKernel,
    buf: &[u8],
    scheme: QuantScheme,
    weight: f32,
    out: &mut [f32],
) -> Result<(), EmbeddingError> {
    let dim = out.len();
    let expected = scheme.row_bytes(dim);
    if buf.len() != expected {
        return Err(EmbeddingError::MalformedRow {
            expected,
            actual: buf.len(),
        });
    }
    match scheme {
        QuantScheme::Fp32 => match kernel.0 {
            Arch::Scalar => scalar_fp32::<W>(buf, weight, out),
            // SAFETY: the Arch invariant guarantees the feature was detected.
            #[cfg(target_arch = "x86_64")]
            Arch::Sse2 => unsafe { x86::fp32_sse2::<W>(buf, weight, out) },
            #[cfg(target_arch = "x86_64")]
            Arch::Avx2 => unsafe { x86::fp32_avx2::<W>(buf, weight, out) },
        },
        QuantScheme::Int8 => {
            let (scale, bias) = row_params(buf);
            let codes = &buf[..dim];
            match kernel.0 {
                Arch::Scalar => scalar_int8::<W>(codes, scale, bias, weight, out),
                // SAFETY: the Arch invariant guarantees the feature was
                // detected.
                #[cfg(target_arch = "x86_64")]
                Arch::Sse2 => unsafe { x86::int8_sse2::<W>(codes, scale, bias, weight, out) },
                #[cfg(target_arch = "x86_64")]
                Arch::Avx2 => unsafe { x86::int8_avx2::<W>(codes, scale, bias, weight, out) },
            }
        }
        QuantScheme::Int4 => {
            let (scale, bias) = row_params(buf);
            let codes = &buf[..dim.div_ceil(2)];
            match kernel.0 {
                Arch::Scalar => scalar_int4_from::<W>(codes, 0, scale, bias, weight, out),
                // SAFETY: the Arch invariant guarantees the feature was
                // detected.
                #[cfg(target_arch = "x86_64")]
                Arch::Sse2 => unsafe { x86::int4_sse2::<W>(codes, scale, bias, weight, out) },
                #[cfg(target_arch = "x86_64")]
                Arch::Avx2 => unsafe { x86::int4_avx2::<W>(codes, scale, bias, weight, out) },
            }
        }
    }
    Ok(())
}

// --- scalar reference kernels (also the vector kernels' tail loops) ------

/// `out[i] += codes[i] as f32 * scale + bias` (optionally `* weight`).
fn scalar_int8<const W: bool>(codes: &[u8], scale: f32, bias: f32, weight: f32, out: &mut [f32]) {
    for (o, &code) in out.iter_mut().zip(codes) {
        let v = code as f32 * scale + bias;
        *o += if W { v * weight } else { v };
    }
}

/// Int4 scalar loop starting at element `start` (so the vector kernels can
/// hand over mid-row with the correct nibble parity). Low nibble first,
/// high nibble second; the padding nibble of an odd-dim row is never read.
fn scalar_int4_from<const W: bool>(
    codes: &[u8],
    start: usize,
    scale: f32,
    bias: f32,
    weight: f32,
    out: &mut [f32],
) {
    for (i, o) in out.iter_mut().enumerate().skip(start) {
        let byte = codes[i / 2];
        let code = if i % 2 == 0 { byte & 0x0F } else { byte >> 4 };
        let v = code as f32 * scale + bias;
        *o += if W { v * weight } else { v };
    }
}

/// `out[i] += row[i]` (optionally `* weight`) over little-endian f32 bytes.
fn scalar_fp32<const W: bool>(buf: &[u8], weight: f32, out: &mut [f32]) {
    for (o, c) in out.iter_mut().zip(buf.chunks_exact(4)) {
        let v = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        *o += if W { v * weight } else { v };
    }
}

// --- x86_64 vector kernels ----------------------------------------------
//
// Every kernel keeps the scalar arithmetic exactly: convert codes to f32
// (exact for 0..=255), packed multiply by the splatted scale, packed add of
// the splatted bias, optional packed multiply by the splatted weight, then
// one packed add into `out` — each operation correctly rounded per lane,
// matching the scalar sequence rounding for rounding. No FMA anywhere.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{scalar_fp32, scalar_int4_from, scalar_int8};
    use core::arch::x86_64::*;

    /// Widens four `u8` codes (packed little-endian into `raw`) to `f32`
    /// lanes, preserving byte order: lane `i` holds byte `i`.
    #[target_feature(enable = "sse2")]
    fn widen4_to_ps(raw: u32) -> __m128 {
        let v = _mm_cvtsi32_si128(raw as i32);
        let zero = _mm_setzero_si128();
        let w16 = _mm_unpacklo_epi8(v, zero);
        let w32 = _mm_unpacklo_epi16(w16, zero);
        _mm_cvtepi32_ps(w32)
    }

    /// Dequantise + accumulate four lanes: `cur + ((codes*scale)+bias)[*w]`.
    #[target_feature(enable = "sse2")]
    fn step4<const W: bool>(
        codes_f: __m128,
        scale: __m128,
        bias: __m128,
        weight: __m128,
        o: &mut [f32],
    ) {
        let mut v = _mm_add_ps(_mm_mul_ps(codes_f, scale), bias);
        if W {
            v = _mm_mul_ps(v, weight);
        }
        // SAFETY: `o` holds at least 4 f32s (checked by every caller);
        // unaligned load/store are allowed by loadu/storeu.
        unsafe {
            let cur = _mm_loadu_ps(o.as_ptr());
            _mm_storeu_ps(o.as_mut_ptr(), _mm_add_ps(cur, v));
        }
    }

    /// Dequantise + accumulate eight lanes (AVX2 form of [`step4`]).
    #[target_feature(enable = "avx2")]
    fn step8<const W: bool>(
        codes_f: __m256,
        scale: __m256,
        bias: __m256,
        weight: __m256,
        o: &mut [f32],
    ) {
        let mut v = _mm256_add_ps(_mm256_mul_ps(codes_f, scale), bias);
        if W {
            v = _mm256_mul_ps(v, weight);
        }
        // SAFETY: `o` holds at least 8 f32s (checked by every caller).
        unsafe {
            let cur = _mm256_loadu_ps(o.as_ptr());
            _mm256_storeu_ps(o.as_mut_ptr(), _mm256_add_ps(cur, v));
        }
    }

    /// SSE2 int8: 4 codes per step, scalar tail for `dim % 4` elements.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available (guaranteed by the
    /// `SelectedKernel` invariant). `codes.len()` must equal `out.len()`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn int8_sse2<const W: bool>(
        codes: &[u8],
        scale: f32,
        bias: f32,
        weight: f32,
        out: &mut [f32],
    ) {
        let scale_v = _mm_set1_ps(scale);
        let bias_v = _mm_set1_ps(bias);
        let weight_v = _mm_set1_ps(weight);
        let mut code_chunks = codes.chunks_exact(4);
        let mut out_chunks = out.chunks_exact_mut(4);
        for (c, o) in (&mut code_chunks).zip(&mut out_chunks) {
            let raw = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            step4::<W>(widen4_to_ps(raw), scale_v, bias_v, weight_v, o);
        }
        scalar_int8::<W>(
            code_chunks.remainder(),
            scale,
            bias,
            weight,
            out_chunks.into_remainder(),
        );
    }

    /// AVX2 int8: 8 codes per step, scalar tail for `dim % 8` elements.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available. `codes.len() == out.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn int8_avx2<const W: bool>(
        codes: &[u8],
        scale: f32,
        bias: f32,
        weight: f32,
        out: &mut [f32],
    ) {
        let scale_v = _mm256_set1_ps(scale);
        let bias_v = _mm256_set1_ps(bias);
        let weight_v = _mm256_set1_ps(weight);
        let mut code_chunks = codes.chunks_exact(8);
        let mut out_chunks = out.chunks_exact_mut(8);
        for (c, o) in (&mut code_chunks).zip(&mut out_chunks) {
            // SAFETY: `c` holds exactly 8 bytes.
            let raw = unsafe { _mm_loadl_epi64(c.as_ptr().cast()) };
            let codes_f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(raw));
            step8::<W>(codes_f, scale_v, bias_v, weight_v, o);
        }
        scalar_int8::<W>(
            code_chunks.remainder(),
            scale,
            bias,
            weight,
            out_chunks.into_remainder(),
        );
    }

    /// SSE2 int4: nibble unpack in scalar registers, dequantise-accumulate
    /// in 4 SIMD lanes; scalar tail for `dim % 4` elements.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available.
    /// `codes.len() == out.len().div_ceil(2)`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn int4_sse2<const W: bool>(
        codes: &[u8],
        scale: f32,
        bias: f32,
        weight: f32,
        out: &mut [f32],
    ) {
        let scale_v = _mm_set1_ps(scale);
        let bias_v = _mm_set1_ps(bias);
        let weight_v = _mm_set1_ps(weight);
        let dim = out.len();
        let main = dim - (dim % 4);
        for k in (0..main).step_by(4) {
            let b0 = codes[k / 2];
            let b1 = codes[k / 2 + 1];
            let raw = u32::from_le_bytes([b0 & 0x0F, b0 >> 4, b1 & 0x0F, b1 >> 4]);
            step4::<W>(
                widen4_to_ps(raw),
                scale_v,
                bias_v,
                weight_v,
                &mut out[k..k + 4],
            );
        }
        scalar_int4_from::<W>(codes, main, scale, bias, weight, out);
    }

    /// AVX2 int4: SIMD nibble unpack of 4 bytes into 8 codes per step,
    /// scalar tail for `dim % 8` elements (including the padding nibble of
    /// odd dims, which is never read).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    /// `codes.len() == out.len().div_ceil(2)`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn int4_avx2<const W: bool>(
        codes: &[u8],
        scale: f32,
        bias: f32,
        weight: f32,
        out: &mut [f32],
    ) {
        let scale_v = _mm256_set1_ps(scale);
        let bias_v = _mm256_set1_ps(bias);
        let weight_v = _mm256_set1_ps(weight);
        let low_mask = _mm_set1_epi8(0x0F);
        let dim = out.len();
        let main = dim - (dim % 8);
        for k in (0..main).step_by(8) {
            let at = k / 2;
            let raw = u32::from_le_bytes([codes[at], codes[at + 1], codes[at + 2], codes[at + 3]]);
            let packed = _mm_cvtsi32_si128(raw as i32);
            let lo = _mm_and_si128(packed, low_mask);
            let hi = _mm_and_si128(_mm_srli_epi16::<4>(packed), low_mask);
            // Interleave to element order: b0&F, b0>>4, b1&F, b1>>4, ...
            let nibbles = _mm_unpacklo_epi8(lo, hi);
            let codes_f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(nibbles));
            step8::<W>(codes_f, scale_v, bias_v, weight_v, &mut out[k..k + 8]);
        }
        scalar_int4_from::<W>(codes, main, scale, bias, weight, out);
    }

    /// SSE2 fp32: 4 elements per step, scalar tail.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available. `buf.len() == out.len() * 4`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn fp32_sse2<const W: bool>(buf: &[u8], weight: f32, out: &mut [f32]) {
        let weight_v = _mm_set1_ps(weight);
        let mut byte_chunks = buf.chunks_exact(16);
        let mut out_chunks = out.chunks_exact_mut(4);
        for (b, o) in (&mut byte_chunks).zip(&mut out_chunks) {
            // SAFETY: `b` holds exactly 16 bytes; x86 is little-endian, so
            // the unaligned load reproduces `f32::from_le_bytes` per lane.
            let mut v = unsafe { _mm_loadu_ps(b.as_ptr().cast()) };
            if W {
                v = _mm_mul_ps(v, weight_v);
            }
            // SAFETY: `o` holds exactly 4 f32s.
            unsafe {
                let cur = _mm_loadu_ps(o.as_ptr());
                _mm_storeu_ps(o.as_mut_ptr(), _mm_add_ps(cur, v));
            }
        }
        scalar_fp32::<W>(byte_chunks.remainder(), weight, out_chunks.into_remainder());
    }

    /// AVX2 fp32: 8 elements per step, scalar tail.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available. `buf.len() == out.len() * 4`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fp32_avx2<const W: bool>(buf: &[u8], weight: f32, out: &mut [f32]) {
        let weight_v = _mm256_set1_ps(weight);
        let mut byte_chunks = buf.chunks_exact(32);
        let mut out_chunks = out.chunks_exact_mut(8);
        for (b, o) in (&mut byte_chunks).zip(&mut out_chunks) {
            // SAFETY: `b` holds exactly 32 bytes (unaligned load, LE lanes).
            let mut v = unsafe { _mm256_loadu_ps(b.as_ptr().cast()) };
            if W {
                v = _mm256_mul_ps(v, weight_v);
            }
            // SAFETY: `o` holds exactly 8 f32s.
            unsafe {
                let cur = _mm256_loadu_ps(o.as_ptr());
                _mm256_storeu_ps(o.as_mut_ptr(), _mm256_add_ps(cur, v));
            }
        }
        scalar_fp32::<W>(byte_chunks.remainder(), weight, out_chunks.into_remainder());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_row;

    fn sample_row(dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| (i as f32 * 0.73).sin() * 3.0 - 0.4)
            .collect()
    }

    fn supported_kernels() -> Vec<SelectedKernel> {
        let mut kernels = vec![PoolKernel::Scalar.resolve()];
        for k in [PoolKernel::Sse2, PoolKernel::Avx2] {
            if k.is_supported() {
                kernels.push(k.resolve());
            }
        }
        kernels
    }

    #[test]
    fn knob_parsing_and_names() {
        assert_eq!(PoolKernel::from_name("AVX2"), Some(PoolKernel::Avx2));
        assert_eq!(PoolKernel::from_name("scalar"), Some(PoolKernel::Scalar));
        assert_eq!(PoolKernel::from_name("sse2"), Some(PoolKernel::Sse2));
        assert_eq!(PoolKernel::from_name("auto"), Some(PoolKernel::Auto));
        assert_eq!(PoolKernel::from_name("avx512"), None);
        assert_eq!(PoolKernel::default(), PoolKernel::Auto);
        assert_eq!(PoolKernel::Avx2.to_string(), "avx2");
        assert_eq!(SelectedKernel::SCALAR.name(), "scalar");
        assert!(!SelectedKernel::SCALAR.is_simd());
    }

    #[test]
    fn scalar_and_auto_always_resolve() {
        assert_eq!(PoolKernel::Scalar.resolve(), SelectedKernel::SCALAR);
        assert!(PoolKernel::Scalar.is_supported());
        assert!(PoolKernel::Auto.is_supported());
        // Auto resolves to something runnable; on x86_64 that is SIMD.
        let auto = PoolKernel::Auto.resolve();
        assert!(!auto.name().is_empty());
        #[cfg(target_arch = "x86_64")]
        assert!(auto.is_simd(), "x86_64 always has at least SSE2");
    }

    #[test]
    fn all_kernels_match_scalar_bitwise_on_quantized_rows() {
        for scheme in [QuantScheme::Int8, QuantScheme::Int4, QuantScheme::Fp32] {
            for dim in [0usize, 1, 3, 4, 7, 8, 15, 16, 33, 64, 127] {
                let row = sample_row(dim);
                let q = quantize_row(&row, scheme);
                let mut reference = vec![0.125f32; dim];
                accumulate_row_with(SelectedKernel::SCALAR, &q, scheme, &mut reference)
                    .expect("scalar accumulate");
                for kernel in supported_kernels() {
                    let mut out = vec![0.125f32; dim];
                    accumulate_row_with(kernel, &q, scheme, &mut out)
                        .unwrap_or_else(|e| panic!("{kernel} accumulate failed: {e}"));
                    let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
                    let want: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got, want, "kernel {kernel}, scheme {scheme}, dim {dim}");
                }
            }
        }
    }

    #[test]
    fn weighted_kernels_match_scalar_bitwise() {
        for scheme in [QuantScheme::Int8, QuantScheme::Int4, QuantScheme::Fp32] {
            for dim in [5usize, 8, 31, 64] {
                for weight in [0.0f32, 1.0, -2.5, 0.333] {
                    let row = sample_row(dim);
                    let q = quantize_row(&row, scheme);
                    let mut reference = vec![0.5f32; dim];
                    accumulate_row_weighted_with(
                        SelectedKernel::SCALAR,
                        &q,
                        scheme,
                        weight,
                        &mut reference,
                    )
                    .expect("scalar weighted accumulate");
                    for kernel in supported_kernels() {
                        let mut out = vec![0.5f32; dim];
                        accumulate_row_weighted_with(kernel, &q, scheme, weight, &mut out)
                            .unwrap_or_else(|e| panic!("{kernel} weighted failed: {e}"));
                        let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
                        let want: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(
                            got, want,
                            "kernel {kernel}, scheme {scheme}, dim {dim}, weight {weight}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn malformed_buffers_rejected_by_every_kernel() {
        for kernel in supported_kernels() {
            let mut out = vec![0.0f32; 8];
            assert!(matches!(
                accumulate_row_with(kernel, &[0u8; 3], QuantScheme::Int8, &mut out),
                Err(EmbeddingError::MalformedRow { .. })
            ));
            assert!(matches!(
                accumulate_row_weighted_with(kernel, &[0u8; 3], QuantScheme::Fp32, 1.0, &mut out),
                Err(EmbeddingError::MalformedRow { .. })
            ));
        }
    }

    #[test]
    fn prefetch_is_harmless() {
        prefetch_row(&[]);
        prefetch_row(&[1, 2, 3]);
        prefetch_row(&vec![0u8; 1024]);
    }

    #[test]
    fn auto_kernel_is_cached_and_runnable() {
        let k = auto_kernel();
        assert_eq!(k, auto_kernel());
        let mut out = vec![0.0f32; 4];
        let q = quantize_row(&[1.0, 2.0, 3.0, 4.0], QuantScheme::Int8);
        accumulate_row_with(k, &q, QuantScheme::Int8, &mut out).expect("auto kernel runs");
        assert!(out.iter().all(|v| v.is_finite()));
    }
}

//! Flat arena storage for embedding rows.
//!
//! The seed implementation stored each table as `Vec<Vec<u8>>` — one heap
//! allocation per row plus a pointer chase on every lookup. A materialised
//! table's rows all have the same encoded length, so a table is really one
//! contiguous byte image with a fixed stride. [`RowArena`] stores exactly
//! that: one `Box<[u8]>` holding every row back to back, which halves the
//! metadata footprint, makes row access a bounds-checked slice into a single
//! allocation, and lets the whole table be written to (or read from) the SM
//! devices without re-assembly.

use crate::error::EmbeddingError;

/// A flat, fixed-stride row store: one contiguous buffer plus the row
/// length, replacing a `Vec<Vec<u8>>` per table.
///
/// # Example
///
/// ```
/// use embedding::RowArena;
///
/// let arena = RowArena::from_rows(3, vec![vec![1u8, 2, 3], vec![4, 5, 6]]).unwrap();
/// assert_eq!(arena.num_rows(), 2);
/// assert_eq!(arena.row(1).unwrap(), &[4, 5, 6]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowArena {
    data: Box<[u8]>,
    row_bytes: usize,
    num_rows: u64,
}

impl RowArena {
    /// Builds an arena by copying `rows` into one contiguous buffer.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::MalformedRow`] if any row's length differs
    /// from `row_bytes`.
    pub fn from_rows<I, R>(row_bytes: usize, rows: I) -> Result<Self, EmbeddingError>
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[u8]>,
    {
        let rows = rows.into_iter();
        let mut data = Vec::with_capacity(rows.size_hint().0 * row_bytes);
        let mut num_rows = 0u64;
        for row in rows {
            let row = row.as_ref();
            if row.len() != row_bytes {
                return Err(EmbeddingError::MalformedRow {
                    expected: row_bytes,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
            num_rows += 1;
        }
        Ok(RowArena {
            data: data.into_boxed_slice(),
            row_bytes,
            num_rows,
        })
    }

    /// Builds an arena by generating each row in index order through `f`,
    /// writing directly into the flat buffer (no intermediate per-row
    /// allocation beyond what `f` itself does).
    pub fn generate(row_bytes: usize, num_rows: u64, mut f: impl FnMut(u64, &mut [u8])) -> Self {
        let mut data = vec![0u8; (num_rows as usize) * row_bytes];
        for i in 0..num_rows {
            let at = (i as usize) * row_bytes;
            f(i, &mut data[at..at + row_bytes]);
        }
        RowArena {
            data: data.into_boxed_slice(),
            row_bytes,
            num_rows,
        }
    }

    /// Encoded length of every row.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Number of rows stored.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.data.len()
    }

    /// Borrows one row.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::RowOutOfRange`] for an invalid index.
    pub fn row(&self, index: u64) -> Result<&[u8], EmbeddingError> {
        if index >= self.num_rows {
            return Err(EmbeddingError::RowOutOfRange {
                row: index,
                rows: self.num_rows,
            });
        }
        let at = (index as usize) * self.row_bytes;
        Ok(&self.data[at..at + self.row_bytes])
    }

    /// Iterates over the rows in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        // `chunks_exact(0)` panics; an arena of zero-length rows yields none.
        if self.row_bytes == 0 {
            self.data.chunks_exact(1).take(0)
        } else {
            self.data.chunks_exact(self.row_bytes).take(usize::MAX)
        }
    }

    /// The whole arena as one contiguous byte image (rows back to back).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let arena = RowArena::from_rows(2, vec![vec![1u8, 2], vec![3, 4], vec![5, 6]]).unwrap();
        assert_eq!(arena.num_rows(), 3);
        assert_eq!(arena.row_bytes(), 2);
        assert_eq!(arena.total_bytes(), 6);
        assert_eq!(arena.row(0).unwrap(), &[1, 2]);
        assert_eq!(arena.row(2).unwrap(), &[5, 6]);
        assert_eq!(arena.as_bytes(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = RowArena::from_rows(2, vec![vec![1u8, 2], vec![3u8]]).unwrap_err();
        assert!(matches!(err, EmbeddingError::MalformedRow { .. }));
    }

    #[test]
    fn out_of_range_row_is_error() {
        let arena = RowArena::from_rows(1, vec![vec![9u8]]).unwrap();
        assert!(matches!(
            arena.row(1),
            Err(EmbeddingError::RowOutOfRange { row: 1, rows: 1 })
        ));
    }

    #[test]
    fn generate_fills_rows_in_order() {
        let arena = RowArena::generate(3, 4, |i, out| out.fill(i as u8));
        assert_eq!(arena.num_rows(), 4);
        assert_eq!(arena.row(2).unwrap(), &[2, 2, 2]);
        assert_eq!(arena.iter().count(), 4);
        let collected: Vec<&[u8]> = arena.iter().collect();
        assert_eq!(collected[3], &[3, 3, 3]);
    }

    #[test]
    fn empty_arena_iterates_nothing() {
        let arena = RowArena::from_rows(4, Vec::<Vec<u8>>::new()).unwrap();
        assert_eq!(arena.num_rows(), 0);
        assert_eq!(arena.iter().count(), 0);
    }
}

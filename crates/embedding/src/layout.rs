//! Byte layout of embedding tables on the slow-memory devices.
//!
//! The SM image is a flat array of fixed-stride rows per table. Strides are
//! the quantised row size rounded up to a DWORD so SGL reads stay aligned;
//! table base offsets are aligned to the device block size so a row never
//! straddles more blocks than necessary.

use crate::error::EmbeddingError;
use crate::table::{TableDescriptor, TableId};
use sdm_metrics::units::Bytes;
use std::collections::HashMap;

/// Where one table lives in the SM address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TablePlacement {
    /// Index of the device within the host's device array.
    pub device_index: usize,
    /// Byte offset of row 0 on that device.
    pub base_offset: u64,
    /// Distance in bytes between consecutive rows.
    pub row_stride: u64,
    /// Bytes of valid row payload (≤ `row_stride`).
    pub row_bytes: u32,
    /// Number of rows laid out.
    pub num_rows: u64,
}

impl TablePlacement {
    /// Byte offset of a row on the device.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::RowOutOfRange`] when the row is outside the
    /// table.
    pub fn row_offset(&self, row: u64) -> Result<u64, EmbeddingError> {
        if row >= self.num_rows {
            return Err(EmbeddingError::RowOutOfRange {
                row,
                rows: self.num_rows,
            });
        }
        Ok(self.base_offset + row * self.row_stride)
    }

    /// Total bytes the table occupies on its device.
    pub fn footprint(&self) -> Bytes {
        Bytes(self.num_rows * self.row_stride)
    }
}

/// The layout of a set of tables across a host's SM devices.
///
/// Tables are assigned to devices greedily by remaining capacity (largest
/// table first, emptiest device first), which balances both capacity and —
/// because IOPS follow bytes for uniformly random row access — IO load.
#[derive(Debug, Clone, Default)]
pub struct SmLayout {
    placements: HashMap<TableId, TablePlacement>,
    device_used: Vec<u64>,
    alignment: u64,
}

impl SmLayout {
    /// Plans a layout for `tables` across `device_count` devices of
    /// `device_capacity` each, aligning table bases to `alignment` bytes
    /// (typically the device access granularity).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidDescriptor`] when there are no
    /// devices, or when the tables do not fit in the aggregate capacity.
    pub fn plan(
        tables: &[TableDescriptor],
        device_count: usize,
        device_capacity: Bytes,
        alignment: Bytes,
    ) -> Result<Self, EmbeddingError> {
        if device_count == 0 {
            return Err(EmbeddingError::InvalidDescriptor {
                reason: "layout requires at least one device".into(),
            });
        }
        let alignment = alignment.as_u64().max(1);
        let mut device_used = vec![0u64; device_count];
        let mut placements = HashMap::new();

        // Largest-first balances the devices.
        let mut order: Vec<&TableDescriptor> = tables.iter().collect();
        order.sort_by_key(|t| std::cmp::Reverse(t.capacity().as_u64()));

        for desc in order {
            desc.validate()?;
            let row_bytes = desc.row_bytes() as u64;
            let row_stride = row_bytes.div_ceil(4) * 4;
            let table_bytes = desc.num_rows * row_stride;

            // Emptiest device that still fits.
            let candidate = (0..device_count)
                .filter(|&d| {
                    let base = device_used[d].div_ceil(alignment) * alignment;
                    base + table_bytes <= device_capacity.as_u64()
                })
                .min_by_key(|&d| device_used[d]);
            let Some(dev) = candidate else {
                return Err(EmbeddingError::InvalidDescriptor {
                    reason: format!(
                        "table {} ({}) does not fit: {} needed, per-device capacity {}",
                        desc.id,
                        desc.name,
                        Bytes(table_bytes),
                        device_capacity
                    ),
                });
            };
            let base = device_used[dev].div_ceil(alignment) * alignment;
            device_used[dev] = base + table_bytes;
            placements.insert(
                desc.id,
                TablePlacement {
                    device_index: dev,
                    base_offset: base,
                    row_stride,
                    row_bytes: desc.row_bytes() as u32,
                    num_rows: desc.num_rows,
                },
            );
        }
        Ok(SmLayout {
            placements,
            device_used,
            alignment,
        })
    }

    /// Placement of one table.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::UnknownTable`] when the table was not part
    /// of the plan.
    pub fn placement(&self, table: TableId) -> Result<&TablePlacement, EmbeddingError> {
        self.placements
            .get(&table)
            .ok_or(EmbeddingError::UnknownTable { table })
    }

    /// Device offset of `(table, row)`.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::UnknownTable`] or
    /// [`EmbeddingError::RowOutOfRange`].
    pub fn row_location(&self, table: TableId, row: u64) -> Result<(usize, u64), EmbeddingError> {
        let p = self.placement(table)?;
        Ok((p.device_index, p.row_offset(row)?))
    }

    /// Number of tables laid out.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when no tables are laid out.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Bytes used on each device.
    pub fn device_usage(&self) -> Vec<Bytes> {
        self.device_used.iter().map(|&b| Bytes(b)).collect()
    }

    /// The base alignment used when planning.
    pub fn alignment(&self) -> Bytes {
        Bytes(self.alignment)
    }

    /// Iterates over `(TableId, &TablePlacement)`.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TablePlacement)> {
        self.placements.iter().map(|(k, v)| (*k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableKind;

    fn tables() -> Vec<TableDescriptor> {
        vec![
            TableDescriptor::new(0, "a", TableKind::User, 1000, 32),
            TableDescriptor::new(1, "b", TableKind::User, 500, 64),
            TableDescriptor::new(2, "c", TableKind::Item, 2000, 16),
        ]
    }

    #[test]
    fn plan_places_every_table_within_capacity() {
        let layout = SmLayout::plan(&tables(), 2, Bytes::from_mib(4), Bytes::from_kib(4)).unwrap();
        assert_eq!(layout.len(), 3);
        assert!(!layout.is_empty());
        for (_, p) in layout.iter() {
            assert!(p.device_index < 2);
            assert_eq!(p.base_offset % 4096, 0);
            assert_eq!(p.row_stride % 4, 0);
            assert!(p.row_stride >= p.row_bytes as u64);
        }
        let usage = layout.device_usage();
        assert_eq!(usage.len(), 2);
        assert!(usage.iter().all(|u| *u <= Bytes::from_mib(4)));
        assert_eq!(layout.alignment(), Bytes::from_kib(4));
    }

    #[test]
    fn rows_have_distinct_non_overlapping_offsets() {
        let layout = SmLayout::plan(&tables(), 1, Bytes::from_mib(8), Bytes(512)).unwrap();
        let p = layout.placement(0).unwrap();
        let o0 = p.row_offset(0).unwrap();
        let o1 = p.row_offset(1).unwrap();
        assert_eq!(o1 - o0, p.row_stride);
        assert!(p.row_offset(1000).is_err());
        assert_eq!(p.footprint(), Bytes(1000 * p.row_stride));
    }

    #[test]
    fn unknown_table_is_an_error() {
        let layout = SmLayout::plan(&tables(), 1, Bytes::from_mib(8), Bytes(512)).unwrap();
        assert!(matches!(
            layout.placement(99),
            Err(EmbeddingError::UnknownTable { table: 99 })
        ));
        assert!(layout.row_location(0, 10).is_ok());
    }

    #[test]
    fn capacity_overflow_is_detected() {
        let err = SmLayout::plan(&tables(), 1, Bytes::from_kib(16), Bytes(512)).unwrap_err();
        assert!(matches!(err, EmbeddingError::InvalidDescriptor { .. }));
    }

    #[test]
    fn zero_devices_rejected() {
        assert!(SmLayout::plan(&tables(), 0, Bytes::from_mib(1), Bytes(512)).is_err());
    }

    #[test]
    fn load_balances_across_devices() {
        // Eight equal tables over two devices should land four per device.
        let descs: Vec<TableDescriptor> = (0..8)
            .map(|i| TableDescriptor::new(i, format!("t{i}"), TableKind::User, 100, 32))
            .collect();
        let layout = SmLayout::plan(&descs, 2, Bytes::from_mib(1), Bytes(512)).unwrap();
        let on_dev0 = layout.iter().filter(|(_, p)| p.device_index == 0).count();
        assert_eq!(on_dev0, 4);
    }

    #[test]
    fn tables_on_same_device_do_not_overlap() {
        let layout = SmLayout::plan(&tables(), 1, Bytes::from_mib(8), Bytes(512)).unwrap();
        let mut spans: Vec<(u64, u64)> = layout
            .iter()
            .map(|(_, p)| (p.base_offset, p.base_offset + p.footprint().as_u64()))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
    }
}

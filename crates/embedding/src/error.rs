//! Error type for embedding-table operations.

use std::error::Error;
use std::fmt;

/// Errors returned by embedding-table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmbeddingError {
    /// A row index was outside the table.
    RowOutOfRange {
        /// Requested row.
        row: u64,
        /// Number of rows in the table.
        rows: u64,
    },
    /// A quantised row buffer had the wrong length for the scheme/dimension.
    MalformedRow {
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        actual: usize,
    },
    /// Weighted pooling was given a different number of weights than rows.
    WeightCountMismatch {
        /// Number of rows to pool.
        rows: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// A table descriptor was invalid (zero rows or zero dimension).
    InvalidDescriptor {
        /// Explanation of the problem.
        reason: String,
    },
    /// The mapping tensor and table disagree about sizes.
    MappingMismatch {
        /// Explanation of the problem.
        reason: String,
    },
    /// A table was not found in a layout.
    UnknownTable {
        /// The missing table id.
        table: u32,
    },
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for table with {rows} rows")
            }
            EmbeddingError::MalformedRow { expected, actual } => {
                write!(
                    f,
                    "malformed quantised row: expected {expected} bytes, got {actual}"
                )
            }
            EmbeddingError::WeightCountMismatch { rows, weights } => {
                write!(
                    f,
                    "weighted pooling weight count mismatch: {rows} rows but {weights} weights"
                )
            }
            EmbeddingError::InvalidDescriptor { reason } => {
                write!(f, "invalid table descriptor: {reason}")
            }
            EmbeddingError::MappingMismatch { reason } => {
                write!(f, "mapping tensor mismatch: {reason}")
            }
            EmbeddingError::UnknownTable { table } => write!(f, "unknown table id {table}"),
        }
    }
}

impl Error for EmbeddingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(EmbeddingError::RowOutOfRange { row: 9, rows: 3 }
            .to_string()
            .contains("9"));
        assert!(EmbeddingError::MalformedRow {
            expected: 40,
            actual: 4
        }
        .to_string()
        .contains("40"));
        assert!(EmbeddingError::UnknownTable { table: 2 }
            .to_string()
            .contains("2"));
        let mismatch = EmbeddingError::WeightCountMismatch {
            rows: 3,
            weights: 5,
        };
        assert!(mismatch.to_string().contains("3 rows"));
        assert!(mismatch.to_string().contains("5 weights"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<EmbeddingError>();
    }
}

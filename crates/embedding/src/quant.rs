//! Row-wise quantisation of embedding rows.
//!
//! Inference embedding tables are quantised row-wise (paper §3 footnote and
//! §A.5): each row stores its elements in int8 (or int4) together with a
//! per-row `f32` scale and bias, so a 64-element row costs 64 + 8 bytes
//! instead of 256. De-quantisation reconstructs `value = code * scale + bias`.

use crate::error::EmbeddingError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of parameter bytes appended to each quantised row (scale + bias,
/// both `f32`).
pub const ROW_PARAM_BYTES: usize = 8;

/// How a table's rows are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum QuantScheme {
    /// 8-bit codes with per-row scale/bias (the common inference format).
    #[default]
    Int8,
    /// 4-bit codes with per-row scale/bias (two elements per byte).
    Int4,
    /// Unquantised IEEE-754 `f32` (used after de-quantisation at load time).
    Fp32,
}

impl QuantScheme {
    /// Bytes needed to store one row of `dim` elements under this scheme.
    pub fn row_bytes(self, dim: usize) -> usize {
        match self {
            QuantScheme::Int8 => dim + ROW_PARAM_BYTES,
            QuantScheme::Int4 => dim.div_ceil(2) + ROW_PARAM_BYTES,
            QuantScheme::Fp32 => dim * 4,
        }
    }

    /// Ratio of this scheme's row size to the `f32` row size.
    pub fn compression_ratio(self, dim: usize) -> f64 {
        QuantScheme::Fp32.row_bytes(dim) as f64 / self.row_bytes(dim) as f64
    }
}

impl fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantScheme::Int8 => f.write_str("int8"),
            QuantScheme::Int4 => f.write_str("int4"),
            QuantScheme::Fp32 => f.write_str("fp32"),
        }
    }
}

/// Quantises one row of `f32` values under the given scheme.
///
/// The returned buffer has exactly [`QuantScheme::row_bytes`] bytes.
pub fn quantize_row(values: &[f32], scheme: QuantScheme) -> Vec<u8> {
    match scheme {
        QuantScheme::Fp32 => values.iter().flat_map(|v| v.to_le_bytes()).collect(),
        QuantScheme::Int8 | QuantScheme::Int4 => {
            let (min, max) = min_max(values);
            let levels: f32 = match scheme {
                QuantScheme::Int8 => 255.0,
                QuantScheme::Int4 => 15.0,
                QuantScheme::Fp32 => unreachable!(),
            };
            let range = (max - min).max(f32::EPSILON);
            let scale = range / levels;
            let bias = min;
            let codes: Vec<u8> = values
                .iter()
                .map(|&v| (((v - bias) / scale).round().clamp(0.0, levels)) as u8)
                .collect();
            let mut out = Vec::with_capacity(scheme.row_bytes(values.len()));
            match scheme {
                QuantScheme::Int8 => out.extend_from_slice(&codes),
                QuantScheme::Int4 => {
                    for pair in codes.chunks(2) {
                        let low = pair[0] & 0x0F;
                        let high = pair.get(1).copied().unwrap_or(0) & 0x0F;
                        out.push(low | (high << 4));
                    }
                }
                QuantScheme::Fp32 => unreachable!(),
            }
            out.extend_from_slice(&scale.to_le_bytes());
            out.extend_from_slice(&bias.to_le_bytes());
            out
        }
    }
}

/// De-quantises a row buffer produced by [`quantize_row`].
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] when the buffer length does not
/// match `scheme.row_bytes(dim)`.
pub fn dequantize_row(
    buf: &[u8],
    scheme: QuantScheme,
    dim: usize,
) -> Result<Vec<f32>, EmbeddingError> {
    let expected = scheme.row_bytes(dim);
    if buf.len() != expected {
        return Err(EmbeddingError::MalformedRow {
            expected,
            actual: buf.len(),
        });
    }
    match scheme {
        QuantScheme::Fp32 => Ok(buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()),
        QuantScheme::Int8 | QuantScheme::Int4 => {
            let (scale, bias) = row_params(buf);
            let mut out = Vec::with_capacity(dim);
            match scheme {
                QuantScheme::Int8 => {
                    for &code in &buf[..dim] {
                        out.push(code as f32 * scale + bias);
                    }
                }
                QuantScheme::Int4 => {
                    for i in 0..dim {
                        let byte = buf[i / 2];
                        let code = if i % 2 == 0 { byte & 0x0F } else { byte >> 4 };
                        out.push(code as f32 * scale + bias);
                    }
                }
                QuantScheme::Fp32 => unreachable!(),
            }
            Ok(out)
        }
    }
}

/// De-quantises a row buffer and *adds* it element-wise into `out`,
/// without materialising the intermediate `f32` row.
///
/// This is the fused kernel behind the slice-based pooling path: the seed
/// implementation allocated a fresh `Vec<f32>` per row
/// ([`dequantize_row`]) and then summed it in a second pass; fusing the two
/// removes one allocation and one full pass over the row per pooled lookup.
/// The per-row arithmetic (`code * scale + bias`, then one `f32` add) is
/// identical to the two-pass version, so accumulating the same rows in the
/// same order is bit-for-bit unchanged. (Callers may still sum rows in a
/// different order than the seed did — the SM serving path now pools cache
/// hits before IO completions — which can shift pooled sums by f32
/// rounding in the last bits.)
///
/// Runs the process-wide [`crate::kernels::auto_kernel`] — the widest
/// SSE2/AVX2 kernel the host supports, which is bit-identical to the scalar
/// loops by the [`crate::kernels`] contract. Use
/// [`crate::kernels::accumulate_row_with`] to pin a specific kernel.
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] when the buffer length does not
/// match `scheme.row_bytes(out.len())`.
pub fn accumulate_row(
    buf: &[u8],
    scheme: QuantScheme,
    out: &mut [f32],
) -> Result<(), EmbeddingError> {
    crate::kernels::accumulate_row_with(crate::kernels::auto_kernel(), buf, scheme, out)
}

/// Weighted variant of [`accumulate_row`]: adds `weight * value` into `out`
/// (SparseLengthsWeightedSum). Kept separate so the unweighted hot loop does
/// not pay a multiply per element. Dispatches through
/// [`crate::kernels::auto_kernel`] like the unweighted form.
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] for a wrong buffer length.
pub fn accumulate_row_weighted(
    buf: &[u8],
    scheme: QuantScheme,
    weight: f32,
    out: &mut [f32],
) -> Result<(), EmbeddingError> {
    crate::kernels::accumulate_row_weighted_with(
        crate::kernels::auto_kernel(),
        buf,
        scheme,
        weight,
        out,
    )
}

/// Reads the trailing per-row `(scale, bias)` parameters. The caller must
/// have validated the buffer length.
pub(crate) fn row_params(buf: &[u8]) -> (f32, f32) {
    let at = buf.len() - ROW_PARAM_BYTES;
    let scale = f32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
    let bias = f32::from_le_bytes([buf[at + 4], buf[at + 5], buf[at + 6], buf[at + 7]]);
    (scale, bias)
}

fn min_max(values: &[f32]) -> (f32, f32) {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in values {
        if v < min {
            min = v;
        }
        if v > max {
            max = v;
        }
    }
    if !min.is_finite() || !max.is_finite() {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| (i as f32 * 0.37).sin() * 2.5 - 0.3)
            .collect()
    }

    #[test]
    fn row_bytes_matches_paper_sizes() {
        // 64-element int8 row with 8B params = 72B, expanding to 256B fp32
        // (the example in paper §A.5).
        assert_eq!(QuantScheme::Int8.row_bytes(64), 72);
        assert_eq!(QuantScheme::Fp32.row_bytes(64), 256);
        assert_eq!(QuantScheme::Int4.row_bytes(64), 40);
        assert!(QuantScheme::Int8.compression_ratio(64) > 3.0);
    }

    #[test]
    fn int8_roundtrip_is_accurate() {
        let row = sample_row(96);
        let q = quantize_row(&row, QuantScheme::Int8);
        assert_eq!(q.len(), QuantScheme::Int8.row_bytes(96));
        let back = dequantize_row(&q, QuantScheme::Int8, 96).unwrap();
        let max_err = row
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let range = 5.0f32;
        assert!(max_err <= range / 255.0 * 1.01, "max_err = {max_err}");
    }

    #[test]
    fn int4_roundtrip_is_coarser_but_bounded() {
        let row = sample_row(33); // odd length exercises the padding nibble
        let q = quantize_row(&row, QuantScheme::Int4);
        assert_eq!(q.len(), QuantScheme::Int4.row_bytes(33));
        let back = dequantize_row(&q, QuantScheme::Int4, 33).unwrap();
        let max_err = row
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err <= 5.0 / 15.0 * 1.01, "max_err = {max_err}");
    }

    #[test]
    fn fp32_roundtrip_is_exact() {
        let row = sample_row(17);
        let q = quantize_row(&row, QuantScheme::Fp32);
        let back = dequantize_row(&q, QuantScheme::Fp32, 17).unwrap();
        assert_eq!(row, back);
    }

    #[test]
    fn constant_row_quantises_without_nan() {
        let row = vec![1.5f32; 8];
        let q = quantize_row(&row, QuantScheme::Int8);
        let back = dequantize_row(&q, QuantScheme::Int8, 8).unwrap();
        for v in back {
            assert!((v - 1.5).abs() < 1e-3);
        }
    }

    #[test]
    fn malformed_buffer_is_rejected() {
        let err = dequantize_row(&[0u8; 3], QuantScheme::Int8, 8).unwrap_err();
        assert!(matches!(err, EmbeddingError::MalformedRow { .. }));
    }

    #[test]
    fn empty_row_roundtrip() {
        let q = quantize_row(&[], QuantScheme::Int8);
        assert_eq!(q.len(), ROW_PARAM_BYTES);
        let back = dequantize_row(&q, QuantScheme::Int8, 0).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn accumulate_matches_dequantize_then_add_bitwise() {
        for scheme in [QuantScheme::Int8, QuantScheme::Int4, QuantScheme::Fp32] {
            let dim = 33;
            let row = sample_row(dim);
            let q = quantize_row(&row, scheme);
            let mut fused = vec![0.25f32; dim];
            accumulate_row(&q, scheme, &mut fused).unwrap();
            let values = dequantize_row(&q, scheme, dim).unwrap();
            let mut two_pass = vec![0.25f32; dim];
            for (o, v) in two_pass.iter_mut().zip(&values) {
                *o += *v;
            }
            assert_eq!(fused, two_pass, "scheme {scheme}");
        }
    }

    #[test]
    fn weighted_accumulate_scales_rows() {
        let dim = 16;
        let row = vec![1.0f32; dim];
        let q = quantize_row(&row, QuantScheme::Int8);
        let mut out = vec![0.0f32; dim];
        accumulate_row_weighted(&q, QuantScheme::Int8, 3.0, &mut out).unwrap();
        for v in out {
            assert!((v - 3.0).abs() < 0.1);
        }
    }

    #[test]
    fn accumulate_rejects_malformed_buffers() {
        let mut out = vec![0.0f32; 8];
        assert!(matches!(
            accumulate_row(&[0u8; 3], QuantScheme::Int8, &mut out),
            Err(EmbeddingError::MalformedRow { .. })
        ));
        assert!(matches!(
            accumulate_row_weighted(&[0u8; 3], QuantScheme::Fp32, 1.0, &mut out),
            Err(EmbeddingError::MalformedRow { .. })
        ));
    }

    #[test]
    fn display_names() {
        assert_eq!(QuantScheme::Int8.to_string(), "int8");
        assert_eq!(QuantScheme::Int4.to_string(), "int4");
        assert_eq!(QuantScheme::Fp32.to_string(), "fp32");
    }
}

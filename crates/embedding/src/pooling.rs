//! Pooling (SparseLengthsSum / EmbeddingBag) over quantised rows.
//!
//! For every embedding operator the inference engine reads `pooling_factor`
//! rows, de-quantises them and sums them into a single output vector that
//! feeds the interaction MLP (paper §4.4). The helpers here operate on raw
//! quantised row buffers so the same code path serves rows coming from the
//! in-memory table, the FM row cache or an SM read.

use crate::error::EmbeddingError;
use crate::quant::{dequantize_row, QuantScheme};

/// Sums a set of already de-quantised rows into a pooled vector.
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] if rows disagree on dimension.
pub fn pool_dense(rows: &[Vec<f32>]) -> Result<Vec<f32>, EmbeddingError> {
    let Some(first) = rows.first() else {
        return Ok(Vec::new());
    };
    let dim = first.len();
    let mut out = vec![0.0f32; dim];
    for row in rows {
        if row.len() != dim {
            return Err(EmbeddingError::MalformedRow {
                expected: dim,
                actual: row.len(),
            });
        }
        for (o, v) in out.iter_mut().zip(row) {
            *o += *v;
        }
    }
    Ok(out)
}

/// De-quantises and sums a set of quantised row buffers.
///
/// This is the hot inner loop of an embedding operator: the cost scales with
/// `rows.len() * dim`, which is why the pooled-embedding cache (paper §4.4)
/// can save meaningful CPU by skipping it on a hit.
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] if any buffer has the wrong
/// length for the scheme and dimension.
pub fn pool_quantized(
    rows: &[&[u8]],
    scheme: QuantScheme,
    dim: usize,
) -> Result<Vec<f32>, EmbeddingError> {
    let mut out = vec![0.0f32; dim];
    for &raw in rows {
        let values = dequantize_row(raw, scheme, dim)?;
        for (o, v) in out.iter_mut().zip(&values) {
            *o += *v;
        }
    }
    Ok(out)
}

/// Weighted pooling: each row is scaled by its weight before summation
/// (SparseLengthsWeightedSum).
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] if `rows` and `weights` have
/// different lengths or any buffer is malformed.
pub fn pool_quantized_weighted(
    rows: &[&[u8]],
    weights: &[f32],
    scheme: QuantScheme,
    dim: usize,
) -> Result<Vec<f32>, EmbeddingError> {
    if rows.len() != weights.len() {
        return Err(EmbeddingError::MalformedRow {
            expected: rows.len(),
            actual: weights.len(),
        });
    }
    let mut out = vec![0.0f32; dim];
    for (&raw, &w) in rows.iter().zip(weights) {
        let values = dequantize_row(raw, scheme, dim)?;
        for (o, v) in out.iter_mut().zip(&values) {
            *o += *v * w;
        }
    }
    Ok(out)
}

/// Estimated floating point operations for pooling `rows` rows of `dim`
/// elements (dequantisation multiply-add plus the accumulation add).
pub fn pooling_flops(rows: usize, dim: usize) -> u64 {
    (rows as u64) * (dim as u64) * 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_row;

    #[test]
    fn pool_dense_sums_elementwise() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]];
        let out = pool_dense(&rows).unwrap();
        assert_eq!(out, vec![11.0, 22.0, 33.0]);
        assert!(pool_dense(&[]).unwrap().is_empty());
    }

    #[test]
    fn pool_dense_rejects_ragged_rows() {
        let rows = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            pool_dense(&rows),
            Err(EmbeddingError::MalformedRow { .. })
        ));
    }

    #[test]
    fn pool_quantized_matches_dense_pooling() {
        let dim = 24;
        let a: Vec<f32> = (0..dim).map(|i| i as f32 * 0.1).collect();
        let b: Vec<f32> = (0..dim).map(|i| 1.0 - i as f32 * 0.05).collect();
        let qa = quantize_row(&a, QuantScheme::Int8);
        let qb = quantize_row(&b, QuantScheme::Int8);
        let pooled = pool_quantized(&[&qa, &qb], QuantScheme::Int8, dim).unwrap();
        let reference = pool_dense(&[a, b]).unwrap();
        for (x, y) in pooled.iter().zip(&reference) {
            assert!((x - y).abs() < 0.05, "{x} vs {y}");
        }
    }

    #[test]
    fn pool_quantized_empty_rows_is_zero_vector() {
        let out = pool_quantized(&[], QuantScheme::Int8, 4).unwrap();
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn weighted_pooling_scales_rows() {
        let dim = 8;
        let a = vec![1.0f32; dim];
        let qa = quantize_row(&a, QuantScheme::Int8);
        let out =
            pool_quantized_weighted(&[&qa, &qa], &[2.0, 3.0], QuantScheme::Int8, dim).unwrap();
        for v in out {
            assert!((v - 5.0).abs() < 0.1);
        }
        assert!(pool_quantized_weighted(&[&qa], &[1.0, 2.0], QuantScheme::Int8, dim).is_err());
    }

    #[test]
    fn malformed_row_detected() {
        let err = pool_quantized(&[&[1u8, 2][..]], QuantScheme::Int8, 8).unwrap_err();
        assert!(matches!(err, EmbeddingError::MalformedRow { .. }));
    }

    #[test]
    fn flops_scale_with_rows_and_dim() {
        assert_eq!(pooling_flops(10, 64), 1920);
        assert_eq!(pooling_flops(0, 64), 0);
    }
}

//! Pooling (SparseLengthsSum / EmbeddingBag) over quantised rows.
//!
//! For every embedding operator the inference engine reads `pooling_factor`
//! rows, de-quantises them and sums them into a single output vector that
//! feeds the interaction MLP (paper §4.4). The helpers here operate on
//! borrowed row slices so the same code path serves rows coming from the
//! in-memory table, the FM row cache or an SM read — without cloning them.
//!
//! Every pooling function has two forms: a `_into` variant that accumulates
//! into a caller-provided output buffer (the zero-allocation hot path used
//! by the serving loop, which reuses one scratch buffer across queries) and
//! a convenience form that allocates and returns the pooled vector. All
//! variants take the expected embedding dimension explicitly, so pooling an
//! empty index list yields a zero vector of the right width instead of a
//! silent dim-0 vector.

use crate::error::EmbeddingError;
use crate::kernels::{
    accumulate_row_weighted_with, accumulate_row_with, auto_kernel, prefetch_row, SelectedKernel,
};
use crate::quant::QuantScheme;

/// Sums already de-quantised rows into `out`, which must hold the expected
/// dimension. `out` is *accumulated into*, not overwritten — zero it first
/// if it holds stale data.
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] if any row disagrees with
/// `out.len()`.
pub fn pool_dense_into(rows: &[&[f32]], out: &mut [f32]) -> Result<(), EmbeddingError> {
    let dim = out.len();
    for row in rows {
        if row.len() != dim {
            return Err(EmbeddingError::MalformedRow {
                expected: dim,
                actual: row.len(),
            });
        }
        for (o, v) in out.iter_mut().zip(*row) {
            *o += *v;
        }
    }
    Ok(())
}

/// Sums a set of already de-quantised rows into a fresh pooled vector of
/// the given dimension. Zero rows pool to a zero vector of length `dim`.
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] if any row's length differs
/// from `dim`.
pub fn pool_dense(rows: &[&[f32]], dim: usize) -> Result<Vec<f32>, EmbeddingError> {
    let mut out = vec![0.0f32; dim];
    pool_dense_into(rows, &mut out)?;
    Ok(out)
}

/// De-quantises and sums quantised row buffers into `out` (accumulating;
/// zero `out` first if needed).
///
/// This is the hot inner loop of an embedding operator: the cost scales
/// with `rows × dim`, which is why the pooled-embedding cache (paper §4.4)
/// can save meaningful CPU by skipping it on a hit. De-quantisation and
/// accumulation are fused, so no intermediate `f32` row is materialised.
///
/// Runs the process-wide [`auto_kernel`]; see [`pool_quantized_into_with`]
/// to pin a specific kernel (A/B comparisons, the bench matrix).
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] if any buffer has the wrong
/// length for the scheme and `out.len()`.
pub fn pool_quantized_into<'a>(
    rows: impl IntoIterator<Item = &'a [u8]>,
    scheme: QuantScheme,
    out: &mut [f32],
) -> Result<(), EmbeddingError> {
    pool_quantized_into_with(auto_kernel(), rows, scheme, out)
}

/// [`pool_quantized_into`] with an explicit dequant-accumulate kernel.
///
/// While row *i* is being accumulated, the leading cache lines of row
/// *i + 1* are software-prefetched, hiding the next row's memory latency
/// behind the current row's arithmetic (the classic EmbeddingBag pattern —
/// rows are pooled exactly once, so without prefetch every row load is a
/// compulsory miss).
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] if any buffer has the wrong
/// length for the scheme and `out.len()`.
pub fn pool_quantized_into_with<'a>(
    kernel: SelectedKernel,
    rows: impl IntoIterator<Item = &'a [u8]>,
    scheme: QuantScheme,
    out: &mut [f32],
) -> Result<(), EmbeddingError> {
    let mut rows = rows.into_iter();
    let Some(mut current) = rows.next() else {
        return Ok(());
    };
    for next in rows {
        prefetch_row(next);
        accumulate_row_with(kernel, current, scheme, out)?;
        current = next;
    }
    accumulate_row_with(kernel, current, scheme, out)
}

/// De-quantises and sums a set of quantised row buffers into a fresh
/// vector. Zero rows pool to a zero vector of length `dim`.
///
/// # Errors
///
/// Returns [`EmbeddingError::MalformedRow`] if any buffer has the wrong
/// length for the scheme and dimension.
pub fn pool_quantized(
    rows: &[&[u8]],
    scheme: QuantScheme,
    dim: usize,
) -> Result<Vec<f32>, EmbeddingError> {
    let mut out = vec![0.0f32; dim];
    pool_quantized_into(rows.iter().copied(), scheme, &mut out)?;
    Ok(out)
}

/// Weighted pooling into `out`: each row is scaled by its weight before
/// summation (SparseLengthsWeightedSum). Accumulates; zero `out` first if
/// needed.
///
/// # Errors
///
/// Returns [`EmbeddingError::WeightCountMismatch`] if `rows` and `weights`
/// have different lengths, or [`EmbeddingError::MalformedRow`] if any
/// buffer is malformed.
pub fn pool_quantized_weighted_into(
    rows: &[&[u8]],
    weights: &[f32],
    scheme: QuantScheme,
    out: &mut [f32],
) -> Result<(), EmbeddingError> {
    pool_quantized_weighted_into_with(auto_kernel(), rows, weights, scheme, out)
}

/// [`pool_quantized_weighted_into`] with an explicit kernel, prefetching
/// the next row during each accumulation like
/// [`pool_quantized_into_with`].
///
/// # Errors
///
/// Returns [`EmbeddingError::WeightCountMismatch`] if `rows` and `weights`
/// have different lengths, or [`EmbeddingError::MalformedRow`] if any
/// buffer is malformed.
pub fn pool_quantized_weighted_into_with(
    kernel: SelectedKernel,
    rows: &[&[u8]],
    weights: &[f32],
    scheme: QuantScheme,
    out: &mut [f32],
) -> Result<(), EmbeddingError> {
    if rows.len() != weights.len() {
        return Err(EmbeddingError::WeightCountMismatch {
            rows: rows.len(),
            weights: weights.len(),
        });
    }
    for (i, (&raw, &w)) in rows.iter().zip(weights).enumerate() {
        if let Some(next) = rows.get(i + 1) {
            prefetch_row(next);
        }
        accumulate_row_weighted_with(kernel, raw, scheme, w, out)?;
    }
    Ok(())
}

/// Weighted pooling returning a fresh vector of length `dim`.
///
/// # Errors
///
/// Returns [`EmbeddingError::WeightCountMismatch`] if `rows` and `weights`
/// have different lengths, or [`EmbeddingError::MalformedRow`] if any
/// buffer is malformed.
pub fn pool_quantized_weighted(
    rows: &[&[u8]],
    weights: &[f32],
    scheme: QuantScheme,
    dim: usize,
) -> Result<Vec<f32>, EmbeddingError> {
    let mut out = vec![0.0f32; dim];
    pool_quantized_weighted_into(rows, weights, scheme, &mut out)?;
    Ok(out)
}

/// Estimated floating point operations for pooling `rows` rows of `dim`
/// elements (dequantisation multiply-add plus the accumulation add).
pub fn pooling_flops(rows: usize, dim: usize) -> u64 {
    (rows as u64) * (dim as u64) * 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_row;

    #[test]
    fn pool_dense_sums_elementwise() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![10.0f32, 20.0, 30.0];
        let out = pool_dense(&[&a, &b], 3).unwrap();
        assert_eq!(out, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn pool_dense_empty_input_is_zero_vector_of_dim() {
        // The seed returned a dim-0 vector here, which silently produced a
        // zero-width pooled embedding downstream.
        let out = pool_dense(&[], 5).unwrap();
        assert_eq!(out, vec![0.0; 5]);
    }

    #[test]
    fn pool_dense_rejects_ragged_rows() {
        let a = vec![1.0f32, 2.0];
        let b = vec![1.0f32];
        assert!(matches!(
            pool_dense(&[&a, &b], 2),
            Err(EmbeddingError::MalformedRow { .. })
        ));
        // Rows that disagree with the declared dim are also rejected.
        assert!(matches!(
            pool_dense(&[&a], 3),
            Err(EmbeddingError::MalformedRow { .. })
        ));
    }

    #[test]
    fn into_variant_accumulates_into_existing_buffer() {
        let a = vec![1.0f32, 1.0];
        let mut out = vec![0.5f32, 0.5];
        pool_dense_into(&[&a, &a], &mut out).unwrap();
        assert_eq!(out, vec![2.5, 2.5]);
    }

    #[test]
    fn pool_quantized_matches_dense_pooling() {
        let dim = 24;
        let a: Vec<f32> = (0..dim).map(|i| i as f32 * 0.1).collect();
        let b: Vec<f32> = (0..dim).map(|i| 1.0 - i as f32 * 0.05).collect();
        let qa = quantize_row(&a, QuantScheme::Int8);
        let qb = quantize_row(&b, QuantScheme::Int8);
        let pooled = pool_quantized(&[&qa, &qb], QuantScheme::Int8, dim).unwrap();
        let reference = pool_dense(&[&a, &b], dim).unwrap();
        for (x, y) in pooled.iter().zip(&reference) {
            assert!((x - y).abs() < 0.05, "{x} vs {y}");
        }
    }

    #[test]
    fn pool_quantized_empty_rows_is_zero_vector() {
        let out = pool_quantized(&[], QuantScheme::Int8, 4).unwrap();
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn pool_quantized_into_matches_allocating_form() {
        let dim = 16;
        let rows: Vec<Vec<u8>> = (0..5)
            .map(|i| {
                let values: Vec<f32> = (0..dim).map(|j| ((i * j) as f32).cos()).collect();
                quantize_row(&values, QuantScheme::Int8)
            })
            .collect();
        let refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
        let allocated = pool_quantized(&refs, QuantScheme::Int8, dim).unwrap();
        let mut reused = vec![0.0f32; dim];
        pool_quantized_into(refs.iter().copied(), QuantScheme::Int8, &mut reused).unwrap();
        assert_eq!(allocated, reused);
    }

    #[test]
    fn weighted_pooling_scales_rows() {
        let dim = 8;
        let a = vec![1.0f32; dim];
        let qa = quantize_row(&a, QuantScheme::Int8);
        let out =
            pool_quantized_weighted(&[&qa, &qa], &[2.0, 3.0], QuantScheme::Int8, dim).unwrap();
        for v in out {
            assert!((v - 5.0).abs() < 0.1);
        }
        // A rows/weights length mismatch is its own error variant, not a
        // bogus MalformedRow with row counts posing as byte lengths.
        assert!(matches!(
            pool_quantized_weighted(&[&qa], &[1.0, 2.0], QuantScheme::Int8, dim),
            Err(EmbeddingError::WeightCountMismatch {
                rows: 1,
                weights: 2
            })
        ));
    }

    #[test]
    fn explicit_kernel_pooling_matches_auto() {
        use crate::kernels::{auto_kernel, PoolKernel};
        let dim = 33;
        let rows: Vec<Vec<u8>> = (0..6)
            .map(|i| {
                let values: Vec<f32> = (0..dim).map(|j| ((i * j) as f32 * 0.11).sin()).collect();
                quantize_row(&values, QuantScheme::Int4)
            })
            .collect();
        let refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
        let weights: Vec<f32> = (0..6).map(|i| 0.5 + i as f32 * 0.25).collect();

        let mut auto_out = vec![0.0f32; dim];
        pool_quantized_into(refs.iter().copied(), QuantScheme::Int4, &mut auto_out).unwrap();
        let mut scalar_out = vec![0.0f32; dim];
        pool_quantized_into_with(
            PoolKernel::Scalar.resolve(),
            refs.iter().copied(),
            QuantScheme::Int4,
            &mut scalar_out,
        )
        .unwrap();
        assert_eq!(auto_out, scalar_out, "auto kernel {}", auto_kernel());

        let mut auto_w = vec![0.0f32; dim];
        pool_quantized_weighted_into(&refs, &weights, QuantScheme::Int4, &mut auto_w).unwrap();
        let mut scalar_w = vec![0.0f32; dim];
        pool_quantized_weighted_into_with(
            PoolKernel::Scalar.resolve(),
            &refs,
            &weights,
            QuantScheme::Int4,
            &mut scalar_w,
        )
        .unwrap();
        assert_eq!(auto_w, scalar_w);
    }

    #[test]
    fn malformed_row_detected() {
        let err = pool_quantized(&[&[1u8, 2][..]], QuantScheme::Int8, 8).unwrap_err();
        assert!(matches!(err, EmbeddingError::MalformedRow { .. }));
    }

    #[test]
    fn flops_scale_with_rows_and_dim() {
        assert_eq!(pooling_flops(10, 64), 1920);
        assert_eq!(pooling_flops(0, 64), 0);
    }
}

//! Logical table descriptors and materialised embedding tables.

use crate::arena::RowArena;
use crate::error::EmbeddingError;
use crate::quant::{dequantize_row, quantize_row, QuantScheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdm_metrics::units::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one embedding table within a model.
pub type TableId = u32;

/// Whether a table materialises user-side or item-side categorical features.
///
/// The distinction matters because an inference query reads user tables once
/// (`B_U = 1`) but item tables once per ranked item (`B_I` in the tens to
/// thousands), so user tables dominate capacity while item tables dominate
/// bandwidth (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableKind {
    /// User-side categorical feature.
    User,
    /// Item-side categorical feature.
    Item,
}

impl fmt::Display for TableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableKind::User => f.write_str("user"),
            TableKind::Item => f.write_str("item"),
        }
    }
}

/// The logical description of one embedding table.
///
/// Descriptors are used for capacity and bandwidth arithmetic even when the
/// table bytes themselves are scaled down for simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDescriptor {
    /// Table id, unique within a model.
    pub id: TableId,
    /// Human-readable name.
    pub name: String,
    /// User or item side.
    pub kind: TableKind,
    /// Number of rows (cardinality of the categorical feature after hashing).
    pub num_rows: u64,
    /// Embedding dimension in elements.
    pub dim: usize,
    /// Quantisation scheme of the stored rows.
    pub quant: QuantScheme,
    /// Average number of rows looked up per query (pooling factor).
    pub pooling_factor: u32,
    /// Zipf skew of the index popularity distribution for this table
    /// (higher means more temporal locality; item tables are typically more
    /// skewed than user tables, paper Figure 4).
    pub zipf_exponent: f64,
    /// Fraction of rows pruned away post-training (0.0 when unpruned).
    pub pruned_fraction: f64,
}

impl TableDescriptor {
    /// Creates a descriptor with default quantisation (int8), pooling factor
    /// 1 and a mild popularity skew.
    pub fn new(
        id: TableId,
        name: impl Into<String>,
        kind: TableKind,
        num_rows: u64,
        dim: usize,
    ) -> Self {
        TableDescriptor {
            id,
            name: name.into(),
            kind,
            num_rows,
            dim,
            quant: QuantScheme::Int8,
            pooling_factor: 1,
            zipf_exponent: 0.9,
            pruned_fraction: 0.0,
        }
    }

    /// Sets the pooling factor.
    pub fn with_pooling_factor(mut self, pf: u32) -> Self {
        self.pooling_factor = pf;
        self
    }

    /// Sets the quantisation scheme.
    pub fn with_quant(mut self, quant: QuantScheme) -> Self {
        self.quant = quant;
        self
    }

    /// Sets the Zipf exponent of the index popularity distribution.
    pub fn with_zipf_exponent(mut self, s: f64) -> Self {
        self.zipf_exponent = s;
        self
    }

    /// Sets the pruned fraction.
    pub fn with_pruned_fraction(mut self, fraction: f64) -> Self {
        self.pruned_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Validates the descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidDescriptor`] when rows or dimension
    /// are zero.
    pub fn validate(&self) -> Result<(), EmbeddingError> {
        if self.num_rows == 0 {
            return Err(EmbeddingError::InvalidDescriptor {
                reason: format!("table {} has zero rows", self.id),
            });
        }
        if self.dim == 0 {
            return Err(EmbeddingError::InvalidDescriptor {
                reason: format!("table {} has zero dimension", self.id),
            });
        }
        Ok(())
    }

    /// Bytes per stored row under the table's quantisation scheme.
    pub fn row_bytes(&self) -> usize {
        self.quant.row_bytes(self.dim)
    }

    /// Total table capacity.
    pub fn capacity(&self) -> Bytes {
        Bytes(self.num_rows * self.row_bytes() as u64)
    }

    /// Bytes this table contributes to one query: `batch * pooling_factor *
    /// row_bytes` where the batch is 1 for user tables and `item_batch` for
    /// item tables (paper Equation 2).
    pub fn bytes_per_query(&self, item_batch: u32) -> Bytes {
        let batch = match self.kind {
            TableKind::User => 1,
            TableKind::Item => item_batch.max(1),
        };
        Bytes(batch as u64 * self.pooling_factor as u64 * self.row_bytes() as u64)
    }

    /// Row lookups this table contributes to one query.
    pub fn lookups_per_query(&self, item_batch: u32) -> u64 {
        let batch = match self.kind {
            TableKind::User => 1,
            TableKind::Item => item_batch.max(1) as u64,
        };
        batch * self.pooling_factor as u64
    }
}

/// A materialised embedding table holding quantised rows in memory.
///
/// Rows live in one flat [`RowArena`] (a single contiguous allocation with a
/// fixed stride) rather than a `Vec<Vec<u8>>`, so row access is a slice into
/// one buffer and the table carries no per-row heap metadata.
///
/// Rows are generated deterministically from a seed so experiments can check
/// data integrity end to end (a row read back through the SM path must equal
/// the row generated here).
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    descriptor: TableDescriptor,
    rows: RowArena,
}

impl EmbeddingTable {
    /// Generates a table from its descriptor with deterministic contents.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor fails validation; use
    /// [`TableDescriptor::validate`] first for fallible handling.
    pub fn generate(descriptor: &TableDescriptor, seed: u64) -> Self {
        if let Err(e) = descriptor.validate() {
            panic!("invalid table descriptor passed to EmbeddingTable::generate: {e}");
        }
        let mut rng = StdRng::seed_from_u64(seed ^ (descriptor.id as u64) << 32);
        let mut values = vec![0.0f32; descriptor.dim];
        let quant = descriptor.quant;
        let rows = RowArena::generate(descriptor.row_bytes(), descriptor.num_rows, |_, out| {
            for v in &mut values {
                *v = rng.gen_range(-1.0f32..1.0f32);
            }
            out.copy_from_slice(&quantize_row(&values, quant));
        });
        EmbeddingTable {
            descriptor: descriptor.clone(),
            rows,
        }
    }

    /// Builds a table from already-quantised rows.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::MalformedRow`] if any row has the wrong
    /// length, or [`EmbeddingError::InvalidDescriptor`] if the row count does
    /// not match the descriptor.
    pub fn from_rows(
        descriptor: TableDescriptor,
        rows: Vec<Vec<u8>>,
    ) -> Result<Self, EmbeddingError> {
        descriptor.validate()?;
        if rows.len() as u64 != descriptor.num_rows {
            return Err(EmbeddingError::InvalidDescriptor {
                reason: format!(
                    "descriptor declares {} rows but {} rows were provided",
                    descriptor.num_rows,
                    rows.len()
                ),
            });
        }
        let rows = RowArena::from_rows(descriptor.row_bytes(), rows)?;
        Ok(EmbeddingTable { descriptor, rows })
    }

    /// The table's descriptor.
    pub fn descriptor(&self) -> &TableDescriptor {
        &self.descriptor
    }

    /// Number of rows.
    pub fn num_rows(&self) -> u64 {
        self.rows.num_rows()
    }

    /// The quantised bytes of one row.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::RowOutOfRange`] for an invalid index.
    pub fn row(&self, index: u64) -> Result<&[u8], EmbeddingError> {
        self.rows.row(index)
    }

    /// The de-quantised values of one row.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::RowOutOfRange`] for an invalid index.
    pub fn dequantized_row(&self, index: u64) -> Result<Vec<f32>, EmbeddingError> {
        let raw = self.row(index)?;
        dequantize_row(raw, self.descriptor.quant, self.descriptor.dim)
    }

    /// Iterates over the quantised rows in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.rows.iter()
    }

    /// The backing arena holding every row back to back.
    pub fn arena(&self) -> &RowArena {
        &self.rows
    }

    /// Total bytes of quantised row data.
    pub fn capacity(&self) -> Bytes {
        Bytes(self.rows.total_bytes() as u64)
    }

    /// Re-encodes the table under a different quantisation scheme (used by
    /// the de-quantisation-at-load experiment, paper §A.5).
    ///
    /// # Errors
    ///
    /// Propagates row decoding errors.
    pub fn requantize(&self, scheme: QuantScheme) -> Result<EmbeddingTable, EmbeddingError> {
        let mut descriptor = self.descriptor.clone();
        descriptor.quant = scheme;
        let mut rows = Vec::with_capacity(self.num_rows() as usize);
        for i in 0..self.num_rows() {
            let values = self.dequantized_row(i)?;
            rows.push(quantize_row(&values, scheme));
        }
        let rows = RowArena::from_rows(descriptor.row_bytes(), rows)?;
        Ok(EmbeddingTable { descriptor, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> TableDescriptor {
        TableDescriptor::new(3, "t", TableKind::User, 100, 16)
            .with_pooling_factor(10)
            .with_quant(QuantScheme::Int8)
    }

    #[test]
    fn descriptor_capacity_math() {
        let d = desc();
        assert_eq!(d.row_bytes(), 24);
        assert_eq!(d.capacity(), Bytes(2400));
        assert_eq!(d.bytes_per_query(100), Bytes(240)); // user table ignores item batch
        assert_eq!(d.lookups_per_query(100), 10);

        let item = TableDescriptor::new(4, "i", TableKind::Item, 100, 16).with_pooling_factor(5);
        assert_eq!(item.lookups_per_query(50), 250);
        assert_eq!(item.bytes_per_query(50), Bytes(250 * 24));
    }

    #[test]
    fn invalid_descriptors_are_rejected() {
        let zero_rows = TableDescriptor::new(0, "x", TableKind::User, 0, 8);
        assert!(zero_rows.validate().is_err());
        let zero_dim = TableDescriptor::new(0, "x", TableKind::User, 8, 0);
        assert!(zero_dim.validate().is_err());
        assert!(desc().validate().is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = EmbeddingTable::generate(&desc(), 7);
        let b = EmbeddingTable::generate(&desc(), 7);
        let c = EmbeddingTable::generate(&desc(), 8);
        assert_eq!(a.row(5).unwrap(), b.row(5).unwrap());
        assert_ne!(a.row(5).unwrap(), c.row(5).unwrap());
    }

    #[test]
    fn row_access_and_bounds() {
        let t = EmbeddingTable::generate(&desc(), 1);
        assert_eq!(t.num_rows(), 100);
        assert_eq!(t.row(0).unwrap().len(), 24);
        assert_eq!(t.dequantized_row(99).unwrap().len(), 16);
        assert!(matches!(
            t.row(100),
            Err(EmbeddingError::RowOutOfRange {
                row: 100,
                rows: 100
            })
        ));
        assert_eq!(t.capacity(), Bytes(2400));
        assert_eq!(t.iter().count(), 100);
    }

    #[test]
    fn from_rows_validates_shapes() {
        let d = desc();
        let bad_count = EmbeddingTable::from_rows(d.clone(), vec![vec![0u8; 24]; 5]);
        assert!(bad_count.is_err());
        let bad_len = EmbeddingTable::from_rows(d.clone(), vec![vec![0u8; 3]; 100]);
        assert!(matches!(bad_len, Err(EmbeddingError::MalformedRow { .. })));
        let ok = EmbeddingTable::from_rows(d, vec![vec![0u8; 24]; 100]);
        assert!(ok.is_ok());
    }

    #[test]
    fn requantize_to_fp32_expands_rows() {
        let t = EmbeddingTable::generate(&desc(), 1);
        let wide = t.requantize(QuantScheme::Fp32).unwrap();
        assert_eq!(wide.descriptor().quant, QuantScheme::Fp32);
        assert_eq!(wide.row(0).unwrap().len(), 64);
        // Values are preserved (within int8 error, exactly zero extra error).
        let a = t.dequantized_row(10).unwrap();
        let b = wide.dequantized_row(10).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(TableKind::User.to_string(), "user");
        assert_eq!(TableKind::Item.to_string(), "item");
    }
}

//! Pruned tables, mapping tensors and de-pruning at load time.
//!
//! Paper §4.5: post-training pruning removes near-zero rows and introduces a
//! *mapping tensor* translating unpruned indices to pruned ones. Placing a
//! pruned table on SM either costs two SM accesses per lookup (mapping +
//! row) or keeps the mapping tensor in fast memory, where it competes with
//! the SM cache for space. De-pruning at load time (Algorithm 2) rebuilds
//! the full table on the cheap SM capacity so the mapping tensor disappears
//! from fast memory, at the cost of slightly more SM traffic (the paper
//! measures ~2.5 % extra requests and up to 48 % performance gain from the
//! recovered cache space).

use crate::error::EmbeddingError;
use crate::quant::quantize_row;
use crate::table::{EmbeddingTable, TableDescriptor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sdm_metrics::units::Bytes;

/// Maps indices in the unpruned space to row positions in the pruned table.
///
/// `None` entries are pruned rows (they decode to the zero vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingTensor {
    entries: Vec<Option<u64>>,
    index_bytes: usize,
}

impl MappingTensor {
    /// Builds a mapping tensor from explicit entries. `index_bytes` is the
    /// storage width per entry (4 or 8 bytes in the paper).
    pub fn new(entries: Vec<Option<u64>>, index_bytes: usize) -> Self {
        MappingTensor {
            entries,
            index_bytes: if index_bytes == 8 { 8 } else { 4 },
        }
    }

    /// Number of entries (unpruned-space rows).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the tensor has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the pruned-space position of an unpruned index.
    pub fn map(&self, unpruned_index: u64) -> Option<u64> {
        self.entries.get(unpruned_index as usize).copied().flatten()
    }

    /// Number of surviving (unpruned) rows.
    pub fn surviving_rows(&self) -> u64 {
        self.entries.iter().filter(|e| e.is_some()).count() as u64
    }

    /// Fast-memory footprint of the tensor:
    /// `NumRows(unpruned) * IdxType` (paper §4.5).
    pub fn footprint(&self) -> Bytes {
        Bytes(self.entries.len() as u64 * self.index_bytes as u64)
    }
}

/// A pruned embedding table: the surviving rows plus the mapping tensor.
#[derive(Debug, Clone)]
pub struct PrunedTable {
    /// Descriptor of the *unpruned* logical table.
    unpruned_descriptor: TableDescriptor,
    /// Physical table holding only the surviving rows.
    pruned_rows: EmbeddingTable,
    /// Unpruned index -> pruned row position.
    mapping: MappingTensor,
}

/// Summary of a de-pruning pass (Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepruneReport {
    /// Rows in the reconstructed (unpruned) table.
    pub total_rows: u64,
    /// Rows that had been pruned and were re-materialised as zero rows.
    pub zero_rows: u64,
    /// Fast-memory bytes freed by dropping the mapping tensor.
    pub mapping_bytes_freed: Bytes,
    /// Extra SM capacity consumed by the reconstruction.
    pub extra_sm_bytes: Bytes,
}

impl PrunedTable {
    /// Prunes a full table, keeping `keep_fraction` of its rows (chosen
    /// pseudo-randomly but deterministically from `seed` — the paper prunes
    /// near-zero rows; which rows survive does not matter for the systems
    /// behaviour, only how many).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidDescriptor`] when `keep_fraction`
    /// is not in `(0, 1]`.
    pub fn prune(
        table: &EmbeddingTable,
        keep_fraction: f64,
        seed: u64,
    ) -> Result<Self, EmbeddingError> {
        if !(keep_fraction > 0.0 && keep_fraction <= 1.0) {
            return Err(EmbeddingError::InvalidDescriptor {
                reason: format!("keep_fraction {keep_fraction} outside (0, 1]"),
            });
        }
        let total = table.num_rows();
        let keep = ((total as f64 * keep_fraction).round() as u64).clamp(1, total);
        let mut indices: Vec<u64> = (0..total).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_1234);
        indices.shuffle(&mut rng);
        let mut survivors: Vec<u64> = indices.into_iter().take(keep as usize).collect();
        survivors.sort_unstable();

        let mut entries = vec![None; total as usize];
        let mut rows = Vec::with_capacity(keep as usize);
        for (pruned_pos, &unpruned_idx) in survivors.iter().enumerate() {
            entries[unpruned_idx as usize] = Some(pruned_pos as u64);
            rows.push(table.row(unpruned_idx)?.to_vec());
        }

        let mut pruned_descriptor = table.descriptor().clone();
        pruned_descriptor.num_rows = keep;
        pruned_descriptor.pruned_fraction = 1.0 - keep_fraction;
        let pruned_rows = EmbeddingTable::from_rows(pruned_descriptor, rows)?;

        let index_bytes = if total > u32::MAX as u64 { 8 } else { 4 };
        Ok(PrunedTable {
            unpruned_descriptor: table.descriptor().clone(),
            pruned_rows,
            mapping: MappingTensor::new(entries, index_bytes),
        })
    }

    /// Descriptor of the original, unpruned table.
    pub fn unpruned_descriptor(&self) -> &TableDescriptor {
        &self.unpruned_descriptor
    }

    /// The physical pruned table.
    pub fn pruned_rows(&self) -> &EmbeddingTable {
        &self.pruned_rows
    }

    /// The mapping tensor.
    pub fn mapping(&self) -> &MappingTensor {
        &self.mapping
    }

    /// Looks up an unpruned-space row: pruned rows decode to `None`.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::RowOutOfRange`] when the unpruned index is
    /// outside the original table.
    pub fn row(&self, unpruned_index: u64) -> Result<Option<&[u8]>, EmbeddingError> {
        if unpruned_index >= self.unpruned_descriptor.num_rows {
            return Err(EmbeddingError::RowOutOfRange {
                row: unpruned_index,
                rows: self.unpruned_descriptor.num_rows,
            });
        }
        match self.mapping.map(unpruned_index) {
            Some(pos) => Ok(Some(self.pruned_rows.row(pos)?)),
            None => Ok(None),
        }
    }

    /// De-prunes at load time (paper Algorithm 2): reconstructs a full table
    /// where pruned rows become explicit zero rows, so the mapping tensor is
    /// no longer needed at serving time.
    ///
    /// # Errors
    ///
    /// Propagates row decoding errors.
    pub fn deprune(&self) -> Result<(EmbeddingTable, DepruneReport), EmbeddingError> {
        let descriptor = self.unpruned_descriptor.clone();
        let zero_row = quantize_row(&vec![0.0f32; descriptor.dim], descriptor.quant);
        let mut rows = Vec::with_capacity(descriptor.num_rows as usize);
        let mut zero_rows = 0u64;
        for idx in 0..descriptor.num_rows {
            match self.mapping.map(idx) {
                Some(pos) => rows.push(self.pruned_rows.row(pos)?.to_vec()),
                None => {
                    rows.push(zero_row.clone());
                    zero_rows += 1;
                }
            }
        }
        let full = EmbeddingTable::from_rows(
            TableDescriptor {
                pruned_fraction: 0.0,
                ..descriptor
            },
            rows,
        )?;
        let report = DepruneReport {
            total_rows: full.num_rows(),
            zero_rows,
            mapping_bytes_freed: self.mapping.footprint(),
            extra_sm_bytes: Bytes(zero_rows * full.descriptor().row_bytes() as u64),
        };
        Ok((full, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableKind;

    fn table() -> EmbeddingTable {
        let d = TableDescriptor::new(1, "t", TableKind::User, 200, 8);
        EmbeddingTable::generate(&d, 3)
    }

    #[test]
    fn prune_keeps_requested_fraction() {
        let t = table();
        let pruned = PrunedTable::prune(&t, 0.6, 42).unwrap();
        assert_eq!(pruned.pruned_rows().num_rows(), 120);
        assert_eq!(pruned.mapping().surviving_rows(), 120);
        assert_eq!(pruned.mapping().len(), 200);
        assert!(!pruned.mapping().is_empty());
    }

    #[test]
    fn invalid_keep_fraction_rejected() {
        let t = table();
        assert!(PrunedTable::prune(&t, 0.0, 1).is_err());
        assert!(PrunedTable::prune(&t, 1.5, 1).is_err());
        assert!(PrunedTable::prune(&t, 1.0, 1).is_ok());
    }

    #[test]
    fn surviving_rows_keep_their_data() {
        let t = table();
        let pruned = PrunedTable::prune(&t, 0.5, 9).unwrap();
        let mut surviving_checked = 0;
        for idx in 0..t.num_rows() {
            if let Some(row) = pruned.row(idx).unwrap() {
                assert_eq!(row, t.row(idx).unwrap());
                surviving_checked += 1;
            }
        }
        assert_eq!(surviving_checked, 100);
        assert!(matches!(
            pruned.row(10_000),
            Err(EmbeddingError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn mapping_footprint_uses_4_byte_indices_for_small_tables() {
        let t = table();
        let pruned = PrunedTable::prune(&t, 0.5, 9).unwrap();
        assert_eq!(pruned.mapping().footprint(), Bytes(200 * 4));
    }

    #[test]
    fn deprune_reconstructs_full_table() {
        let t = table();
        let pruned = PrunedTable::prune(&t, 0.7, 5).unwrap();
        let (full, report) = pruned.deprune().unwrap();
        assert_eq!(full.num_rows(), 200);
        assert_eq!(report.total_rows, 200);
        assert_eq!(report.zero_rows, 60);
        assert_eq!(report.mapping_bytes_freed, Bytes(800));
        assert_eq!(
            report.extra_sm_bytes,
            Bytes(60 * full.descriptor().row_bytes() as u64)
        );
        // Surviving rows identical, pruned rows decode to zeros.
        for idx in 0..t.num_rows() {
            match pruned.row(idx).unwrap() {
                Some(orig) => assert_eq!(full.row(idx).unwrap(), orig),
                None => {
                    let values = full.dequantized_row(idx).unwrap();
                    assert!(values.iter().all(|v| v.abs() < 1e-6));
                }
            }
        }
        assert!((full.descriptor().pruned_fraction - 0.0).abs() < 1e-12);
    }

    #[test]
    fn deprune_grows_capacity_by_pruned_share() {
        let t = table();
        let pruned = PrunedTable::prune(&t, 0.5, 5).unwrap();
        let (full, _) = pruned.deprune().unwrap();
        assert_eq!(full.capacity(), t.capacity());
        assert_eq!(
            pruned.pruned_rows().capacity(),
            Bytes(t.capacity().as_u64() / 2)
        );
    }
}

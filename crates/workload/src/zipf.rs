//! Zipf-distributed index sampling with a scrambled rank → row mapping.
//!
//! A plain Zipf sampler would make row 0 the hottest, row 1 the second
//! hottest and so on, which would create artificial *spatial* locality (hot
//! rows packed into the first few 4 KiB blocks). Production tables have hot
//! rows scattered across the index space, which is exactly why the paper
//! finds temporal locality without spatial locality (Figures 4 and 5). The
//! sampler therefore applies a deterministic pseudo-random permutation to the
//! sampled rank.

use crate::error::WorkloadError;
use rand::Rng;
use rand_distr::{Distribution, Zipf};

/// Samples row indices for one table with power-law popularity.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    num_rows: u64,
    exponent: f64,
    zipf: Zipf<f64>,
    scramble_key: u64,
}

impl ZipfSampler {
    /// Creates a sampler over `num_rows` rows with the given Zipf exponent
    /// (`s` near 0 is uniform, `s` around 1 is strongly skewed).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] when `num_rows` is zero or
    /// the exponent is negative or not finite.
    pub fn new(num_rows: u64, exponent: f64, scramble_key: u64) -> Result<Self, WorkloadError> {
        if num_rows == 0 {
            return Err(WorkloadError::InvalidConfig {
                reason: "zipf sampler needs at least one row".into(),
            });
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(WorkloadError::InvalidConfig {
                reason: format!("zipf exponent {exponent} must be finite and non-negative"),
            });
        }
        // rand_distr's Zipf requires s > 0; treat 0 as "almost uniform".
        let effective = exponent.max(1e-3);
        let zipf = Zipf::new(num_rows, effective).map_err(|e| WorkloadError::InvalidConfig {
            reason: format!("zipf construction failed: {e}"),
        })?;
        Ok(ZipfSampler {
            num_rows,
            exponent,
            zipf,
            scramble_key,
        })
    }

    /// Number of rows the sampler draws from.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Maps a popularity rank (1 = hottest) to a scattered row index.
    fn scramble(&self, rank: u64) -> u64 {
        // Feistel-free multiplicative hash, then reduce modulo the table
        // size. Collisions merely merge two ranks onto one row, which is
        // harmless for locality statistics.
        let mut x = rank ^ self.scramble_key;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x % self.num_rows
    }

    /// Draws one row index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.zipf.sample(rng) as u64;
        self.scramble(rank.clamp(1, self.num_rows))
    }

    /// Draws a pooled lookup: `count` row indices (duplicates allowed, as in
    /// real traces).
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(ZipfSampler::new(0, 1.0, 0).is_err());
        assert!(ZipfSampler::new(10, -1.0, 0).is_err());
        assert!(ZipfSampler::new(10, f64::NAN, 0).is_err());
        assert!(ZipfSampler::new(10, 0.0, 0).is_ok());
    }

    #[test]
    fn samples_are_in_range_and_deterministic() {
        let s = ZipfSampler::new(1000, 0.9, 7).unwrap();
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let xs = s.sample_many(&mut a, 100);
        let ys = s.sample_many(&mut b, 100);
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&x| x < 1000));
        assert_eq!(s.num_rows(), 1000);
        assert!((s.exponent() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn high_exponent_concentrates_accesses() {
        let rows = 10_000u64;
        let skewed = ZipfSampler::new(rows, 1.1, 3).unwrap();
        let uniform = ZipfSampler::new(rows, 0.01, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let count_top_share = |sampler: &ZipfSampler, rng: &mut StdRng| {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for _ in 0..20_000 {
                *counts.entry(sampler.sample(rng)).or_default() += 1;
            }
            let mut freqs: Vec<u64> = counts.values().copied().collect();
            freqs.sort_unstable_by(|a, b| b.cmp(a));
            let top = freqs.iter().take(freqs.len() / 100 + 1).sum::<u64>() as f64;
            top / 20_000.0
        };
        let skewed_share = count_top_share(&skewed, &mut rng);
        let uniform_share = count_top_share(&uniform, &mut rng);
        assert!(
            skewed_share > 3.0 * uniform_share,
            "skewed {skewed_share} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn hot_rows_are_scattered_across_blocks() {
        // The hottest 100 ranks should not cluster into a handful of 4KiB
        // blocks (assuming 128B rows → 32 rows per block).
        let s = ZipfSampler::new(100_000, 1.0, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(s.sample(&mut rng)).or_default() += 1;
        }
        let mut rows: Vec<(u64, u64)> = counts.into_iter().collect();
        rows.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
        let hot_blocks: std::collections::HashSet<u64> =
            rows.iter().take(100).map(|(r, _)| r / 32).collect();
        assert!(
            hot_blocks.len() > 80,
            "hot rows clustered: {}",
            hot_blocks.len()
        );
    }

    #[test]
    fn different_scramble_keys_give_different_hot_sets() {
        let a = ZipfSampler::new(1000, 1.0, 1).unwrap();
        let b = ZipfSampler::new(1000, 1.0, 2).unwrap();
        // Rank 1 maps to different rows under different keys.
        assert_ne!(a.scramble(1), b.scramble(1));
    }
}

//! Open-loop arrival processes on the virtual clock.
//!
//! Closed-loop driving (feeding batches as fast as shards drain them)
//! measures makespan, not service quality: it cannot answer "what p99 do
//! we serve at X offered QPS". The generators here produce *offered* load
//! — arrival instants drawn independently of how fast the server happens
//! to be — so a front end can measure queueing, deadline misses, and shed
//! rate under a controlled load.
//!
//! All processes are deterministic per seed on the virtual
//! [`SimInstant`] timeline: the same `(process, seed)` pair yields the
//! same arrival sequence on every run, which is what lets benchmark
//! gates compare latency curves exactly instead of within a jitter band.

use rand::prelude::*;
use sdm_metrics::{SimDuration, SimInstant};

use crate::error::WorkloadError;

/// An open-loop arrival process: the law governing inter-arrival gaps.
///
/// Every variant is a (possibly time-varying) Poisson process — gaps are
/// exponential with the instantaneous rate evaluated at the previous
/// arrival. That piecewise approximation is standard for discrete-event
/// load generation and keeps sampling O(1) and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at a fixed mean rate.
    Poisson {
        /// Mean offered load in queries per virtual second. Must be
        /// positive and finite.
        rate_qps: f64,
    },
    /// Square-wave load: each period opens with a burst window at
    /// `burst_qps`, then relaxes to `base_qps` for the remainder.
    Bursty {
        /// Rate outside the burst window, queries per virtual second.
        base_qps: f64,
        /// Rate inside the burst window, queries per virtual second.
        burst_qps: f64,
        /// Length of one burst/base cycle.
        period: SimDuration,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        burst_fraction: f64,
    },
    /// Sinusoidal day/night load: rate swings around `mean_qps` with
    /// relative amplitude `amplitude` over each `period`.
    Diurnal {
        /// Mean offered load in queries per virtual second.
        mean_qps: f64,
        /// Relative swing in `[0, 1)`; instantaneous rate stays within
        /// `mean_qps * (1 ± amplitude)` and therefore positive.
        amplitude: f64,
        /// Length of one full sinusoidal cycle.
        period: SimDuration,
    },
}

impl ArrivalProcess {
    /// Validates the process parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        fn positive(value: f64, what: &'static str) -> Result<(), WorkloadError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(WorkloadError::InvalidConfig {
                    reason: format!("{what} must be positive and finite, got {value}"),
                })
            }
        }
        match *self {
            ArrivalProcess::Poisson { rate_qps } => positive(rate_qps, "Poisson rate_qps"),
            ArrivalProcess::Bursty {
                base_qps,
                burst_qps,
                period,
                burst_fraction,
            } => {
                positive(base_qps, "Bursty base_qps")?;
                positive(burst_qps, "Bursty burst_qps")?;
                if period.is_zero() {
                    return Err(WorkloadError::InvalidConfig {
                        reason: "Bursty period must be non-zero".to_string(),
                    });
                }
                if !(burst_fraction.is_finite() && burst_fraction > 0.0 && burst_fraction < 1.0) {
                    return Err(WorkloadError::InvalidConfig {
                        reason: format!(
                            "Bursty burst_fraction must be in (0, 1), got {burst_fraction}"
                        ),
                    });
                }
                Ok(())
            }
            ArrivalProcess::Diurnal {
                mean_qps,
                amplitude,
                period,
            } => {
                positive(mean_qps, "Diurnal mean_qps")?;
                if period.is_zero() {
                    return Err(WorkloadError::InvalidConfig {
                        reason: "Diurnal period must be non-zero".to_string(),
                    });
                }
                if !(amplitude.is_finite() && (0.0..1.0).contains(&amplitude)) {
                    return Err(WorkloadError::InvalidConfig {
                        reason: format!("Diurnal amplitude must be in [0, 1), got {amplitude}"),
                    });
                }
                Ok(())
            }
        }
    }

    /// Instantaneous rate (queries per virtual second) at `now`.
    pub fn rate_at(&self, now: SimInstant) -> f64 {
        let elapsed = now.duration_since(SimInstant::EPOCH);
        match *self {
            ArrivalProcess::Poisson { rate_qps } => rate_qps,
            ArrivalProcess::Bursty {
                base_qps,
                burst_qps,
                period,
                burst_fraction,
            } => {
                let phase_nanos = elapsed.as_nanos() % period.as_nanos();
                let phase = phase_nanos as f64 / period.as_nanos() as f64;
                if phase < burst_fraction {
                    burst_qps
                } else {
                    base_qps
                }
            }
            ArrivalProcess::Diurnal {
                mean_qps,
                amplitude,
                period,
            } => {
                let phase_nanos = elapsed.as_nanos() % period.as_nanos();
                let phase = phase_nanos as f64 / period.as_nanos() as f64;
                mean_qps * (1.0 + amplitude * (std::f64::consts::TAU * phase).sin())
            }
        }
    }
}

/// Seeded generator producing a monotone stream of arrival instants.
///
/// Cheap to construct (no heap allocation) and O(1) per sample; two
/// generators built from the same `(process, seed)` pair produce
/// identical sequences.
#[derive(Debug, Clone)]
pub struct ArrivalGenerator {
    process: ArrivalProcess,
    rng: StdRng,
    cursor: SimInstant,
}

impl ArrivalGenerator {
    /// Builds a generator starting at the virtual epoch.
    pub fn new(process: ArrivalProcess, seed: u64) -> Result<Self, WorkloadError> {
        process.validate()?;
        Ok(ArrivalGenerator {
            process,
            rng: StdRng::seed_from_u64(seed),
            cursor: SimInstant::EPOCH,
        })
    }

    /// The process driving this generator.
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    /// Instant of the most recently generated arrival (epoch before the
    /// first call to [`next_arrival`](Self::next_arrival)).
    pub fn now(&self) -> SimInstant {
        self.cursor
    }

    /// Advances to and returns the next arrival instant.
    ///
    /// Gaps are exponential with the instantaneous rate at the previous
    /// arrival, via inversion sampling: `-ln(1 - u) / rate`.
    pub fn next_arrival(&mut self) -> SimInstant {
        let rate = self.process.rate_at(self.cursor);
        let u: f64 = self.rng.gen();
        let gap_secs = -(1.0 - u).ln() / rate;
        self.cursor += SimDuration::from_secs_f64(gap_secs);
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(process: ArrivalProcess, seed: u64, n: usize) -> Vec<SimInstant> {
        let mut gen = ArrivalGenerator::new(process, seed).expect("valid process");
        (0..n).map(|_| gen.next_arrival()).collect()
    }

    #[test]
    fn same_seed_means_identical_sequences() {
        for process in [
            ArrivalProcess::Poisson { rate_qps: 250.0 },
            ArrivalProcess::Bursty {
                base_qps: 100.0,
                burst_qps: 1000.0,
                period: SimDuration::from_millis(50),
                burst_fraction: 0.25,
            },
            ArrivalProcess::Diurnal {
                mean_qps: 400.0,
                amplitude: 0.5,
                period: SimDuration::from_millis(200),
            },
        ] {
            let a = collect(process, 0x5d_2022, 512);
            let b = collect(process, 0x5d_2022, 512);
            assert_eq!(a, b, "{process:?} not deterministic per seed");
            let c = collect(process, 0x5d_2023, 512);
            assert_ne!(a, c, "{process:?} ignored the seed");
        }
    }

    #[test]
    fn arrivals_are_monotone_non_decreasing() {
        let arrivals = collect(ArrivalProcess::Poisson { rate_qps: 10_000.0 }, 7, 2048);
        for pair in arrivals.windows(2) {
            assert!(pair[0] <= pair[1], "arrivals went backwards: {pair:?}");
        }
    }

    #[test]
    fn poisson_mean_rate_is_close_to_target() {
        let n = 20_000;
        let arrivals = collect(ArrivalProcess::Poisson { rate_qps: 500.0 }, 11, n);
        let span = arrivals[n - 1]
            .duration_since(SimInstant::EPOCH)
            .as_secs_f64();
        let measured = n as f64 / span;
        assert!(
            (measured - 500.0).abs() / 500.0 < 0.05,
            "measured {measured} qps vs target 500"
        );
    }

    #[test]
    fn bursty_rate_toggles_and_diurnal_rate_swings() {
        let bursty = ArrivalProcess::Bursty {
            base_qps: 100.0,
            burst_qps: 900.0,
            period: SimDuration::from_millis(100),
            burst_fraction: 0.3,
        };
        let in_burst = SimInstant::EPOCH + SimDuration::from_millis(10);
        let in_base = SimInstant::EPOCH + SimDuration::from_millis(60);
        assert_eq!(bursty.rate_at(in_burst), 900.0);
        assert_eq!(bursty.rate_at(in_base), 100.0);

        let diurnal = ArrivalProcess::Diurnal {
            mean_qps: 400.0,
            amplitude: 0.5,
            period: SimDuration::from_millis(100),
        };
        let peak = diurnal.rate_at(SimInstant::EPOCH + SimDuration::from_millis(25));
        let trough = diurnal.rate_at(SimInstant::EPOCH + SimDuration::from_millis(75));
        assert!((peak - 600.0).abs() < 1.0, "peak {peak}");
        assert!((trough - 200.0).abs() < 1.0, "trough {trough}");
        // Rate never dips to zero or below for amplitude < 1.
        for ms in 0..100 {
            let rate = diurnal.rate_at(SimInstant::EPOCH + SimDuration::from_millis(ms));
            assert!(rate > 0.0, "rate {rate} at {ms}ms");
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let bad = [
            ArrivalProcess::Poisson { rate_qps: 0.0 },
            ArrivalProcess::Poisson { rate_qps: f64::NAN },
            ArrivalProcess::Bursty {
                base_qps: 100.0,
                burst_qps: 500.0,
                period: SimDuration::ZERO,
                burst_fraction: 0.5,
            },
            ArrivalProcess::Bursty {
                base_qps: 100.0,
                burst_qps: 500.0,
                period: SimDuration::from_millis(10),
                burst_fraction: 1.0,
            },
            ArrivalProcess::Diurnal {
                mean_qps: 400.0,
                amplitude: 1.0,
                period: SimDuration::from_millis(10),
            },
            ArrivalProcess::Diurnal {
                mean_qps: -1.0,
                amplitude: 0.2,
                period: SimDuration::from_millis(10),
            },
        ];
        for process in bad {
            assert!(
                ArrivalGenerator::new(process, 1).is_err(),
                "{process:?} should be rejected"
            );
        }
    }
}

//! Access traces: flat per-table streams of row accesses derived from
//! queries, used by the locality analysis.

use crate::query::Query;
use embedding::TableId;
use std::collections::HashMap;

/// A recorded stream of row accesses, grouped by table, in arrival order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTrace {
    accesses: HashMap<TableId, Vec<u64>>,
    total: u64,
}

impl AccessTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        AccessTrace::default()
    }

    /// Records one row access.
    pub fn record(&mut self, table: TableId, row: u64) {
        self.accesses.entry(table).or_default().push(row);
        self.total += 1;
    }

    /// Records every lookup of a query.
    pub fn record_query(&mut self, query: &Query) {
        for req in query.user_requests.iter().chain(query.item_requests.iter()) {
            for &idx in &req.indices {
                self.record(req.table, idx);
            }
        }
    }

    /// Builds a trace from a set of queries.
    pub fn from_queries<'a>(queries: impl IntoIterator<Item = &'a Query>) -> Self {
        let mut trace = AccessTrace::new();
        for q in queries {
            trace.record_query(q);
        }
        trace
    }

    /// Tables present in the trace.
    pub fn tables(&self) -> Vec<TableId> {
        let mut t: Vec<TableId> = self.accesses.keys().copied().collect();
        t.sort_unstable();
        t
    }

    /// The access stream of one table (empty slice when absent).
    pub fn table_accesses(&self, table: TableId) -> &[u64] {
        self.accesses
            .get(&table)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total accesses across all tables.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Merges another trace into this one (order within tables is this
    /// trace's accesses followed by the other's).
    pub fn merge(&mut self, other: &AccessTrace) {
        for (table, rows) in &other.accesses {
            self.accesses.entry(*table).or_default().extend(rows);
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QueryGenerator, WorkloadConfig};
    use embedding::{TableDescriptor, TableKind};

    #[test]
    fn record_and_lookup() {
        let mut t = AccessTrace::new();
        assert!(t.is_empty());
        t.record(3, 10);
        t.record(3, 11);
        t.record(5, 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.tables(), vec![3, 5]);
        assert_eq!(t.table_accesses(3), &[10, 11]);
        assert!(t.table_accesses(99).is_empty());
    }

    #[test]
    fn from_queries_counts_every_lookup() {
        let tables = vec![
            TableDescriptor::new(0, "u", TableKind::User, 100, 8).with_pooling_factor(4),
            TableDescriptor::new(1, "i", TableKind::Item, 100, 8).with_pooling_factor(2),
        ];
        let cfg = WorkloadConfig {
            item_batch: 3,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&tables, cfg, 0).unwrap();
        let queries = gen.generate(10);
        let trace = AccessTrace::from_queries(&queries);
        let expected: usize = queries.iter().map(|q| q.total_lookups()).sum();
        assert_eq!(trace.len(), expected as u64);
    }

    #[test]
    fn merge_combines_streams() {
        let mut a = AccessTrace::new();
        a.record(1, 5);
        let mut b = AccessTrace::new();
        b.record(1, 6);
        b.record(2, 7);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.table_accesses(1), &[5, 6]);
        assert_eq!(a.table_accesses(2), &[7]);
    }
}

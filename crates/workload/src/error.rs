//! Error type for workload generation.

use std::error::Error;
use std::fmt;

/// Errors returned by workload generation and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The workload was configured without any tables.
    NoTables,
    /// A configuration value was out of range.
    InvalidConfig {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NoTables => write!(f, "workload requires at least one table"),
            WorkloadError::InvalidConfig { reason } => {
                write!(f, "invalid workload config: {reason}")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(WorkloadError::NoTables.to_string().contains("table"));
        assert!(WorkloadError::InvalidConfig {
            reason: "zipf".into()
        }
        .to_string()
        .contains("zipf"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<WorkloadError>();
    }
}

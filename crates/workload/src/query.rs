//! Query generation: user/item embedding requests per inference query.

use crate::error::WorkloadError;
use crate::zipf::ZipfSampler;
use embedding::{TableDescriptor, TableId, TableKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One pooled-embedding lookup: a table plus the index sequence to pool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbeddingRequest {
    /// The table to read.
    pub table: TableId,
    /// The row indices to pool (length ≈ the table's pooling factor).
    pub indices: Vec<u64>,
}

impl EmbeddingRequest {
    /// Number of row lookups in this request.
    pub fn lookups(&self) -> usize {
        self.indices.len()
    }
}

/// One inference query: the user-side requests (batch 1) and the item-side
/// requests (one per table per ranked item).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Monotonically increasing query id.
    pub id: u64,
    /// The user issuing the query (drives sticky routing and sequence
    /// repetition).
    pub user_id: u64,
    /// User-side embedding requests, one per user table.
    pub user_requests: Vec<EmbeddingRequest>,
    /// Item-side embedding requests, one per item table per ranked item.
    pub item_requests: Vec<EmbeddingRequest>,
    /// Number of items ranked by this query.
    pub item_batch: u32,
}

impl Query {
    /// Total row lookups across user and item requests.
    pub fn total_lookups(&self) -> usize {
        self.user_requests
            .iter()
            .chain(self.item_requests.iter())
            .map(|r| r.lookups())
            .sum()
    }
}

/// Parameters of the synthetic query stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of ranked items per query (`B_I`, tens to thousands).
    pub item_batch: u32,
    /// Number of distinct users in the population.
    pub user_population: u64,
    /// Zipf exponent of user popularity (how often the same user reappears;
    /// this is what makes full index sequences repeat).
    pub user_zipf_exponent: f64,
    /// Use-case flavour: inference (user batch 1) vs inference-eval
    /// (user batch == item batch), paper Table 2.
    pub inference_eval: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            item_batch: 50,
            user_population: 100_000,
            user_zipf_exponent: 0.8,
            inference_eval: false,
        }
    }
}

impl WorkloadConfig {
    /// A heavily skewed stream: a small user population under a steep Zipf
    /// exponent, so a compact set of hot users (and through them hot
    /// per-table index sequences) dominates the stream. This is the
    /// workload shape under which cross-shard row reuse shows up — the
    /// same hot rows are requested on *every* shard no matter how queries
    /// are routed — making it the standard stream for shared-tier
    /// measurements and tests.
    pub fn skewed(user_population: u64, user_zipf_exponent: f64) -> Self {
        WorkloadConfig {
            user_population,
            user_zipf_exponent,
            ..WorkloadConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for zero batches or
    /// populations.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.item_batch == 0 {
            return Err(WorkloadError::InvalidConfig {
                reason: "item_batch must be at least 1".into(),
            });
        }
        if self.user_population == 0 {
            return Err(WorkloadError::InvalidConfig {
                reason: "user_population must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Deterministic query generator over a set of table descriptors.
///
/// User-table index sequences are a pure function of `(user_id, table)`, so
/// repeated users repeat their full sequences — the behaviour the
/// pooled-embedding cache exploits. Item-table sequences are drawn fresh per
/// ranked item from the table's Zipf popularity distribution.
#[derive(Debug)]
pub struct QueryGenerator {
    user_tables: Vec<TableDescriptor>,
    item_tables: Vec<TableDescriptor>,
    user_samplers: Vec<ZipfSampler>,
    item_samplers: Vec<ZipfSampler>,
    user_popularity: ZipfSampler,
    config: WorkloadConfig,
    rng: StdRng,
    next_id: u64,
}

impl QueryGenerator {
    /// Creates a generator for the given tables.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NoTables`] when `tables` is empty and
    /// propagates configuration errors.
    pub fn new(
        tables: &[TableDescriptor],
        config: WorkloadConfig,
        seed: u64,
    ) -> Result<Self, WorkloadError> {
        if tables.is_empty() {
            return Err(WorkloadError::NoTables);
        }
        config.validate()?;
        let user_tables: Vec<TableDescriptor> = tables
            .iter()
            .filter(|t| t.kind == TableKind::User)
            .cloned()
            .collect();
        let item_tables: Vec<TableDescriptor> = tables
            .iter()
            .filter(|t| t.kind == TableKind::Item)
            .cloned()
            .collect();
        let make_samplers = |ts: &[TableDescriptor]| -> Result<Vec<ZipfSampler>, WorkloadError> {
            ts.iter()
                .map(|t| ZipfSampler::new(t.num_rows, t.zipf_exponent, seed ^ t.id as u64))
                .collect()
        };
        let user_samplers = make_samplers(&user_tables)?;
        let item_samplers = make_samplers(&item_tables)?;
        let user_popularity = ZipfSampler::new(
            config.user_population,
            config.user_zipf_exponent,
            seed ^ 0xabcd,
        )?;
        Ok(QueryGenerator {
            user_tables,
            item_tables,
            user_samplers,
            item_samplers,
            user_popularity,
            config,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        })
    }

    /// The user-side table descriptors.
    pub fn user_tables(&self) -> &[TableDescriptor] {
        &self.user_tables
    }

    /// The item-side table descriptors.
    pub fn item_tables(&self) -> &[TableDescriptor] {
        &self.item_tables
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Index sequence a given user produces for a given user table. This is
    /// a pure function: the same `(user, table)` pair always produces the
    /// same sequence.
    fn user_sequence(&self, user_id: u64, table_pos: usize) -> Vec<u64> {
        let table = &self.user_tables[table_pos];
        let sampler = &self.user_samplers[table_pos];
        let mut user_rng = StdRng::seed_from_u64(user_id ^ ((table.id as u64) << 32) ^ 0x51ab);
        sampler.sample_many(&mut user_rng, table.pooling_factor as usize)
    }

    /// Generates the next query.
    pub fn next_query(&mut self) -> Query {
        let id = self.next_id;
        self.next_id += 1;
        let user_id = self.user_popularity.sample(&mut self.rng);

        let user_batch = if self.config.inference_eval {
            self.config.item_batch
        } else {
            1
        };
        let mut user_requests = Vec::with_capacity(self.user_tables.len() * user_batch as usize);
        for _ in 0..user_batch {
            for pos in 0..self.user_tables.len() {
                user_requests.push(EmbeddingRequest {
                    table: self.user_tables[pos].id,
                    indices: self.user_sequence(user_id, pos),
                });
            }
        }

        let mut item_requests =
            Vec::with_capacity(self.item_tables.len() * self.config.item_batch as usize);
        for _ in 0..self.config.item_batch {
            for (pos, table) in self.item_tables.iter().enumerate() {
                let indices = self.item_samplers[pos]
                    .sample_many(&mut self.rng, table.pooling_factor as usize);
                item_requests.push(EmbeddingRequest {
                    table: table.id,
                    indices,
                });
            }
        }

        Query {
            id,
            user_id,
            user_requests,
            item_requests,
            item_batch: self.config.item_batch,
        }
    }

    /// Generates a batch of queries.
    pub fn generate(&mut self, count: usize) -> Vec<Query> {
        (0..count).map(|_| self.next_query()).collect()
    }

    /// Draws a uniformly random user id (useful for tests).
    pub fn random_user(&mut self) -> u64 {
        self.rng.gen_range(0..self.config.user_population)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> Vec<TableDescriptor> {
        vec![
            TableDescriptor::new(0, "user_a", TableKind::User, 5_000, 32).with_pooling_factor(20),
            TableDescriptor::new(1, "user_b", TableKind::User, 2_000, 16).with_pooling_factor(10),
            TableDescriptor::new(2, "item_a", TableKind::Item, 8_000, 32).with_pooling_factor(5),
        ]
    }

    #[test]
    fn skewed_config_concentrates_users() {
        let cfg = WorkloadConfig::skewed(32, 1.2);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.user_population, 32);
        assert!((cfg.user_zipf_exponent - 1.2).abs() < 1e-12);
        // A skewed stream repeats its hot users far more often than the
        // default stream: count distinct users over a short window.
        let mut gen = QueryGenerator::new(&tables(), cfg, 7).unwrap();
        let queries = gen.generate(200);
        let distinct: std::collections::HashSet<u64> = queries.iter().map(|q| q.user_id).collect();
        assert!(
            distinct.len() < 33,
            "{} distinct users from a population of 32",
            distinct.len()
        );
    }

    #[test]
    fn empty_tables_rejected() {
        assert!(matches!(
            QueryGenerator::new(&[], WorkloadConfig::default(), 0),
            Err(WorkloadError::NoTables)
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = WorkloadConfig {
            item_batch: 0,
            ..Default::default()
        };
        assert!(QueryGenerator::new(&tables(), cfg, 0).is_err());
        let cfg = WorkloadConfig {
            user_population: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn query_shape_matches_batching_rules() {
        let cfg = WorkloadConfig {
            item_batch: 7,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&tables(), cfg, 1).unwrap();
        let q = gen.next_query();
        // 2 user tables, user batch 1.
        assert_eq!(q.user_requests.len(), 2);
        // 1 item table * 7 items.
        assert_eq!(q.item_requests.len(), 7);
        assert_eq!(q.item_batch, 7);
        assert_eq!(q.user_requests[0].lookups(), 20);
        assert_eq!(q.user_requests[1].lookups(), 10);
        assert_eq!(q.item_requests[0].lookups(), 5);
        assert_eq!(q.total_lookups(), 20 + 10 + 7 * 5);
    }

    #[test]
    fn inference_eval_uses_matching_user_batch() {
        let cfg = WorkloadConfig {
            item_batch: 4,
            inference_eval: true,
            ..WorkloadConfig::default()
        };
        let mut gen = QueryGenerator::new(&tables(), cfg, 1).unwrap();
        let q = gen.next_query();
        assert_eq!(q.user_requests.len(), 2 * 4);
    }

    #[test]
    fn same_user_repeats_identical_sequences() {
        let mut gen = QueryGenerator::new(&tables(), WorkloadConfig::default(), 3).unwrap();
        // Find two queries from the same user.
        let queries = gen.generate(300);
        let mut by_user: std::collections::HashMap<u64, Vec<&Query>> = Default::default();
        for q in &queries {
            by_user.entry(q.user_id).or_default().push(q);
        }
        let repeated = by_user
            .values()
            .find(|v| v.len() >= 2)
            .expect("no repeated user");
        assert_eq!(
            repeated[0].user_requests[0].indices,
            repeated[1].user_requests[0].indices
        );
        // Item sequences are not repeated.
        assert_ne!(
            repeated[0].item_requests[0].indices,
            repeated[1].item_requests[0].indices
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = QueryGenerator::new(&tables(), WorkloadConfig::default(), 9).unwrap();
        let mut b = QueryGenerator::new(&tables(), WorkloadConfig::default(), 9).unwrap();
        let mut c = QueryGenerator::new(&tables(), WorkloadConfig::default(), 10).unwrap();
        assert_eq!(a.generate(5), b.generate(5));
        assert_ne!(a.generate(5), c.generate(5));
    }

    #[test]
    fn indices_stay_within_tables() {
        let mut gen = QueryGenerator::new(&tables(), WorkloadConfig::default(), 2).unwrap();
        for q in gen.generate(50) {
            for r in q.user_requests.iter().chain(q.item_requests.iter()) {
                let table = tables().iter().find(|t| t.id == r.table).unwrap().clone();
                assert!(r.indices.iter().all(|&i| i < table.num_rows));
            }
        }
    }

    #[test]
    fn accessors_expose_partitioned_tables() {
        let gen = QueryGenerator::new(&tables(), WorkloadConfig::default(), 2).unwrap();
        assert_eq!(gen.user_tables().len(), 2);
        assert_eq!(gen.item_tables().len(), 1);
        assert_eq!(gen.config().item_batch, 50);
    }
}

//! Temporal and spatial locality analysis (paper Figures 4 and 5).

use std::collections::{HashMap, HashSet};

/// Summary of the temporal locality of one access stream.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityReport {
    /// Total accesses analysed.
    pub total_accesses: u64,
    /// Distinct rows touched.
    pub unique_rows: u64,
    /// Share of accesses captured by the hottest 1 % of touched rows.
    pub top1_share: f64,
    /// Share of accesses captured by the hottest 10 % of touched rows.
    pub top10_share: f64,
    /// Share of accesses captured by the hottest 50 % of touched rows.
    pub top50_share: f64,
}

impl LocalityReport {
    /// A crude "does this look like a power law" indicator: the hottest 10 %
    /// of rows capturing well over 10 % of traffic.
    pub fn is_skewed(&self) -> bool {
        self.top10_share > 0.3
    }
}

/// Computes the cumulative distribution of accesses over rows ranked by
/// popularity: the returned points are `(fraction_of_unique_rows,
/// fraction_of_accesses)` with rows ordered hottest-first (the curve plotted
/// in paper Figure 4). The curve is sampled at `points` evenly spaced row
/// fractions; an empty access stream yields an empty curve.
pub fn temporal_locality_cdf(accesses: &[u64], points: usize) -> Vec<(f64, f64)> {
    if accesses.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &row in accesses {
        *counts.entry(row).or_default() += 1;
    }
    let mut freqs: Vec<u64> = counts.values().copied().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = freqs.iter().sum();
    let unique = freqs.len();

    // Prefix sums over the ranked rows.
    let mut cumulative = Vec::with_capacity(unique);
    let mut running = 0u64;
    for f in &freqs {
        running += f;
        cumulative.push(running);
    }

    (1..=points)
        .map(|p| {
            let frac_rows = p as f64 / points as f64;
            let idx = ((frac_rows * unique as f64).ceil() as usize).clamp(1, unique) - 1;
            (frac_rows, cumulative[idx] as f64 / total as f64)
        })
        .collect()
}

/// Builds a [`LocalityReport`] from an access stream.
pub fn locality_report(accesses: &[u64]) -> LocalityReport {
    if accesses.is_empty() {
        return LocalityReport {
            total_accesses: 0,
            unique_rows: 0,
            top1_share: 0.0,
            top10_share: 0.0,
            top50_share: 0.0,
        };
    }
    let curve = temporal_locality_cdf(accesses, 100);
    let mut counts: HashSet<u64> = HashSet::new();
    for &row in accesses {
        counts.insert(row);
    }
    let share_at = |frac: f64| -> f64 {
        curve
            .iter()
            .find(|(f, _)| *f >= frac - 1e-9)
            .map(|(_, s)| *s)
            .unwrap_or(1.0)
    };
    LocalityReport {
        total_accesses: accesses.len() as u64,
        unique_rows: counts.len() as u64,
        top1_share: share_at(0.01),
        top10_share: share_at(0.10),
        top50_share: share_at(0.50),
    }
}

/// Computes the paper's spatial-locality proxy (Figure 5) for one access
/// stream: the average over windows of
/// `(unique indices / unique 4 KiB blocks) / (rows per block)`.
///
/// A value of 1.0 means every touched block had all of its rows touched
/// (perfect spatial locality); `1 / rows_per_block` means every touched row
/// sat in its own block (no spatial locality). Returns 0.0 for an empty
/// stream or degenerate row size.
pub fn spatial_locality(
    accesses: &[u64],
    row_bytes: usize,
    block_bytes: usize,
    window: usize,
) -> f64 {
    if accesses.is_empty() || row_bytes == 0 || block_bytes == 0 {
        return 0.0;
    }
    let rows_per_block = (block_bytes / row_bytes).max(1) as f64;
    let window = window.max(1);
    let mut ratios = Vec::new();
    for chunk in accesses.chunks(window) {
        let unique_rows: HashSet<u64> = chunk.iter().copied().collect();
        let unique_blocks: HashSet<u64> = chunk
            .iter()
            .map(|&row| row * row_bytes as u64 / block_bytes as u64)
            .collect();
        if unique_blocks.is_empty() {
            continue;
        }
        let ratio = unique_rows.len() as f64 / unique_blocks.len() as f64;
        ratios.push((ratio / rows_per_block).min(1.0));
    }
    if ratios.is_empty() {
        0.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::ZipfSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_stream_yields_empty_results() {
        assert!(temporal_locality_cdf(&[], 10).is_empty());
        assert_eq!(locality_report(&[]).total_accesses, 0);
        assert_eq!(spatial_locality(&[], 128, 4096, 100), 0.0);
    }

    #[test]
    fn uniform_accesses_have_linear_cdf() {
        let accesses: Vec<u64> = (0..1000u64).collect();
        let curve = temporal_locality_cdf(&accesses, 10);
        assert_eq!(curve.len(), 10);
        for (frac_rows, frac_accesses) in curve {
            assert!((frac_rows - frac_accesses).abs() < 0.01);
        }
        assert!(!locality_report(&accesses).is_skewed());
    }

    #[test]
    fn zipfian_accesses_have_concave_cdf() {
        let sampler = ZipfSampler::new(10_000, 1.0, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let accesses = sampler.sample_many(&mut rng, 50_000);
        let report = locality_report(&accesses);
        assert!(report.is_skewed());
        assert!(report.top10_share > 0.5, "top10 = {}", report.top10_share);
        assert!(report.top1_share > 0.15, "top1 = {}", report.top1_share);
        assert!(report.top50_share > report.top10_share);
        assert!(report.unique_rows < report.total_accesses);
        // CDF is monotone non-decreasing and ends at 1.
        let curve = temporal_locality_cdf(&accesses, 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_rows_show_high_spatial_locality() {
        // 32 rows of 128B per 4KiB block, accessed block by block.
        let accesses: Vec<u64> = (0..32 * 100u64).collect();
        let s = spatial_locality(&accesses, 128, 4096, 3200);
        assert!(s > 0.9, "s = {s}");
    }

    #[test]
    fn strided_rows_show_low_spatial_locality() {
        // One row per block.
        let accesses: Vec<u64> = (0..1000u64).map(|i| i * 32).collect();
        let s = spatial_locality(&accesses, 128, 4096, 1000);
        assert!(s < 0.05, "s = {s}");
    }

    #[test]
    fn zipf_scrambled_trace_has_low_spatial_locality() {
        // The paper's key observation: temporal locality without spatial
        // locality.
        let sampler = ZipfSampler::new(100_000, 0.9, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let accesses = sampler.sample_many(&mut rng, 30_000);
        let s = spatial_locality(&accesses, 128, 4096, 5_000);
        assert!(s < 0.3, "s = {s}");
    }

    #[test]
    fn degenerate_parameters_are_safe() {
        let accesses = vec![1, 2, 3];
        assert_eq!(spatial_locality(&accesses, 0, 4096, 10), 0.0);
        assert_eq!(spatial_locality(&accesses, 128, 0, 10), 0.0);
        // window of zero is clamped
        assert!(spatial_locality(&accesses, 128, 4096, 0) > 0.0);
        assert!(temporal_locality_cdf(&accesses, 0).is_empty());
    }
}

//! Synthetic DLRM inference workloads and access-locality analysis.
//!
//! The paper's locality study (Figures 4 and 5) and all end-to-end results
//! are driven by six days of production traces that are not publicly
//! available. This crate substitutes a deterministic generator that
//! reproduces the statistical properties those results depend on:
//!
//! * per-table index popularity follows a power law (Zipf), with item tables
//!   more skewed than user tables (Figure 4a/4b);
//! * popular indices are scattered across the table, so there is essentially
//!   no spatial locality at 4 KiB-block granularity (Figure 5);
//! * queries read user tables once (`user batch = 1`) and item tables once
//!   per ranked item (Table 2);
//! * the same user reappears across queries, so full index sequences repeat
//!   with a small probability — the effect the pooled-embedding cache
//!   exploits (§4.4);
//! * routing queries to hosts with a user-sticky policy concentrates each
//!   user's accesses on one host and raises per-host temporal locality
//!   (Figure 4c).
//!
//! # Example
//!
//! ```
//! use embedding::{TableDescriptor, TableKind};
//! use workload::{QueryGenerator, WorkloadConfig};
//!
//! let tables = vec![
//!     TableDescriptor::new(0, "user_a", TableKind::User, 10_000, 32).with_pooling_factor(20),
//!     TableDescriptor::new(1, "item_a", TableKind::Item, 10_000, 32).with_pooling_factor(5),
//! ];
//! let mut gen = QueryGenerator::new(&tables, WorkloadConfig::default(), 42).unwrap();
//! let q = gen.next_query();
//! assert_eq!(q.user_requests.len(), 1);
//! assert!(!q.item_requests.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod arrival;
mod error;
mod locality;
mod query;
mod router;
mod trace;
mod zipf;

pub use arrival::{ArrivalGenerator, ArrivalProcess};
pub use error::WorkloadError;
pub use locality::{locality_report, spatial_locality, temporal_locality_cdf, LocalityReport};
pub use query::{EmbeddingRequest, Query, QueryGenerator, WorkloadConfig};
pub use router::{RoutingPolicy, Scheduler};
pub use trace::AccessTrace;
pub use zipf::ZipfSampler;

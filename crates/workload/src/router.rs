//! Query routing across serving hosts.
//!
//! Inference queries pass through a scheduler/aggregator that picks a host
//! for ranking. The paper observes (Figure 4c) that the temporal locality
//! seen *by one host* is higher than the global trace, and that a
//! user-to-host sticky policy increases the per-host cache hit rate further,
//! because each user's (repeating) index sequences always land on the same
//! host.

use crate::query::Query;
use crate::trace::AccessTrace;
use serde::{Deserialize, Serialize};

/// How the scheduler assigns queries to hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RoutingPolicy {
    /// Spread queries evenly regardless of the user.
    RoundRobin,
    /// Hash the user id to a host, so a user always lands on the same host.
    #[default]
    UserSticky,
}

/// The query scheduler / aggregator in front of a pool of serving hosts.
#[derive(Debug, Clone)]
pub struct Scheduler {
    hosts: usize,
    policy: RoutingPolicy,
    next_rr: u64,
}

impl Scheduler {
    /// Creates a scheduler over `hosts` serving hosts (minimum 1).
    pub fn new(hosts: usize, policy: RoutingPolicy) -> Self {
        Scheduler {
            hosts: hosts.max(1),
            policy,
            next_rr: 0,
        }
    }

    /// Number of hosts behind the scheduler.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// The routing policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Picks the host for a query.
    pub fn route(&mut self, query: &Query) -> usize {
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let host = (self.next_rr % self.hosts as u64) as usize;
                self.next_rr += 1;
                host
            }
            RoutingPolicy::UserSticky => {
                let mut x = query.user_id ^ 0x243f_6a88_85a3_08d3;
                x ^= x >> 31;
                x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                x ^= x >> 29;
                (x % self.hosts as u64) as usize
            }
        }
    }

    /// Partitions a stream of queries into per-host access traces.
    pub fn per_host_traces(&mut self, queries: &[Query]) -> Vec<AccessTrace> {
        let mut traces = vec![AccessTrace::new(); self.hosts];
        for q in queries {
            let host = self.route(q);
            traces[host].record_query(q);
        }
        traces
    }

    /// Partitions a stream of queries into per-host query lists.
    ///
    /// Allocating convenience form of [`Scheduler::partition_into`].
    pub fn partition<'a>(&mut self, queries: &'a [Query]) -> Vec<Vec<&'a Query>> {
        let mut parts = Vec::new();
        self.partition_into(queries, &mut parts);
        parts
    }

    /// Partitions a stream of queries into caller-owned per-host query
    /// lists, reusing the inner `Vec` capacity across calls so a serving
    /// loop that partitions batch after batch stays allocation-free once
    /// warmed.
    pub fn partition_into<'a>(&mut self, queries: &'a [Query], parts: &mut Vec<Vec<&'a Query>>) {
        parts.resize_with(self.hosts, Vec::new);
        for p in parts.iter_mut() {
            p.clear();
        }
        for q in queries {
            let host = self.route(q);
            parts[host].push(q);
        }
    }

    /// Partitions a stream of queries into per-host lists of *positions
    /// within `queries`*, reusing the inner `Vec` capacity across calls.
    ///
    /// Sharded serving uses this form: each shard executes its picks by
    /// index and the host can merge per-shard results back into the
    /// original query order without any per-batch bookkeeping allocation.
    pub fn partition_indices_into(&mut self, queries: &[Query], parts: &mut Vec<Vec<usize>>) {
        parts.resize_with(self.hosts, Vec::new);
        for p in parts.iter_mut() {
            p.clear();
        }
        for (i, q) in queries.iter().enumerate() {
            let host = self.route(q);
            parts[host].push(i);
        }
    }

    /// Partitions a *selection* of queries — `picks` holds positions within
    /// `queries` — into per-host lists, reusing inner `Vec` capacity.
    ///
    /// Two parallel outputs are filled per host: `exec_parts` holds the
    /// global positions within `queries` (what a shard executes) and
    /// `pick_parts` the positions within `picks` (where the caller merges
    /// each result back). A dynamic batcher dispatching admitted subsets of
    /// an open-loop stream uses this form; it stays allocation-free once
    /// the buffers are warmed.
    pub fn partition_picks_into(
        &mut self,
        queries: &[Query],
        picks: &[usize],
        exec_parts: &mut Vec<Vec<usize>>,
        pick_parts: &mut Vec<Vec<usize>>,
    ) {
        exec_parts.resize_with(self.hosts, Vec::new);
        pick_parts.resize_with(self.hosts, Vec::new);
        for p in exec_parts.iter_mut().chain(pick_parts.iter_mut()) {
            p.clear();
        }
        for (pos, &qi) in picks.iter().enumerate() {
            let host = self.route(&queries[qi]);
            exec_parts[host].push(qi);
            pick_parts[host].push(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::locality_report;
    use crate::query::{QueryGenerator, WorkloadConfig};
    use embedding::{TableDescriptor, TableKind};

    fn tables() -> Vec<TableDescriptor> {
        vec![
            TableDescriptor::new(0, "u", TableKind::User, 20_000, 16)
                .with_pooling_factor(10)
                .with_zipf_exponent(0.7),
            TableDescriptor::new(1, "i", TableKind::Item, 20_000, 16)
                .with_pooling_factor(4)
                .with_zipf_exponent(1.0),
        ]
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let mut gen = QueryGenerator::new(&tables(), WorkloadConfig::default(), 1).unwrap();
        let queries = gen.generate(100);
        let mut sched = Scheduler::new(4, RoutingPolicy::RoundRobin);
        let parts = sched.partition(&queries);
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert_eq!(p.len(), 25);
        }
    }

    #[test]
    fn sticky_routing_sends_a_user_to_one_host() {
        let mut gen = QueryGenerator::new(&tables(), WorkloadConfig::default(), 2).unwrap();
        let queries = gen.generate(200);
        let mut sched = Scheduler::new(8, RoutingPolicy::UserSticky);
        let mut user_to_host: std::collections::HashMap<u64, usize> = Default::default();
        for q in &queries {
            let host = sched.route(q);
            if let Some(&prev) = user_to_host.get(&q.user_id) {
                assert_eq!(prev, host, "user {} moved hosts", q.user_id);
            }
            user_to_host.insert(q.user_id, host);
        }
        assert_eq!(sched.hosts(), 8);
        assert_eq!(sched.policy(), RoutingPolicy::UserSticky);
    }

    #[test]
    fn per_host_traces_cover_every_access() {
        let mut gen = QueryGenerator::new(&tables(), WorkloadConfig::default(), 3).unwrap();
        let queries = gen.generate(60);
        let total: u64 = queries.iter().map(|q| q.total_lookups() as u64).sum();
        let mut sched = Scheduler::new(3, RoutingPolicy::UserSticky);
        let traces = sched.per_host_traces(&queries);
        let sum: u64 = traces.iter().map(|t| t.len()).sum();
        assert_eq!(sum, total);
    }

    #[test]
    fn sticky_routing_raises_per_host_user_table_locality() {
        // Reproduces the Figure 4c observation qualitatively: with a
        // user-sticky policy all of a user's (identical, repeating) index
        // sequences land on the same host, so the per-host re-reference rate
        // on user tables is higher than with user-oblivious round-robin
        // routing.
        let cfg = WorkloadConfig {
            user_population: 2_000,
            user_zipf_exponent: 0.9,
            item_batch: 10,
            inference_eval: false,
        };
        let mut gen = QueryGenerator::new(&tables(), cfg, 7).unwrap();
        let queries = gen.generate(2_000);

        let reuse_rate = |trace: &AccessTrace| -> f64 {
            let accesses = trace.table_accesses(0);
            if accesses.is_empty() {
                return 0.0;
            }
            let unique: std::collections::HashSet<u64> = accesses.iter().copied().collect();
            1.0 - unique.len() as f64 / accesses.len() as f64
        };
        let mean_reuse = |traces: &[AccessTrace]| -> f64 {
            let rates: Vec<f64> = traces
                .iter()
                .filter(|t| !t.table_accesses(0).is_empty())
                .map(reuse_rate)
                .collect();
            rates.iter().sum::<f64>() / rates.len() as f64
        };

        let sticky = Scheduler::new(16, RoutingPolicy::UserSticky).per_host_traces(&queries);
        let rr = Scheduler::new(16, RoutingPolicy::RoundRobin).per_host_traces(&queries);
        let sticky_reuse = mean_reuse(&sticky);
        let rr_reuse = mean_reuse(&rr);
        assert!(
            sticky_reuse > rr_reuse,
            "sticky {sticky_reuse} <= round-robin {rr_reuse}"
        );

        // The global trace is still skewed (power-law users and rows).
        let global = AccessTrace::from_queries(&queries);
        assert!(locality_report(global.table_accesses(0)).is_skewed());
    }

    #[test]
    fn zero_hosts_clamped_to_one() {
        let sched = Scheduler::new(0, RoutingPolicy::RoundRobin);
        assert_eq!(sched.hosts(), 1);
    }

    #[test]
    fn partition_into_matches_partition_and_reuses_capacity() {
        let mut gen = QueryGenerator::new(&tables(), WorkloadConfig::default(), 5).unwrap();
        let queries = gen.generate(120);
        let expected = Scheduler::new(4, RoutingPolicy::UserSticky).partition(&queries);
        let mut parts = Vec::new();
        // Two rounds over the same stream: the second must refill the same
        // buffers (same results, no extra inner vectors).
        for _ in 0..2 {
            let mut sched = Scheduler::new(4, RoutingPolicy::UserSticky);
            sched.partition_into(&queries, &mut parts);
        }
        assert_eq!(parts.len(), expected.len());
        for (got, want) in parts.iter().zip(&expected) {
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(want) {
                assert!(std::ptr::eq(*a, *b));
            }
        }
    }

    #[test]
    fn partition_indices_preserve_query_order_and_cover_all() {
        let mut gen = QueryGenerator::new(&tables(), WorkloadConfig::default(), 6).unwrap();
        let queries = gen.generate(100);
        for policy in [RoutingPolicy::RoundRobin, RoutingPolicy::UserSticky] {
            let mut sched = Scheduler::new(3, policy);
            let mut parts = Vec::new();
            sched.partition_indices_into(&queries, &mut parts);
            assert_eq!(parts.len(), 3);
            // Every query appears exactly once, and each part is sorted
            // (queries are visited in stream order).
            let mut seen = vec![false; queries.len()];
            for part in &parts {
                assert!(part.windows(2).all(|w| w[0] < w[1]));
                for &i in part {
                    assert!(!seen[i], "query {i} assigned twice");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn partition_picks_agree_with_full_partition_on_identity_selection() {
        let mut gen = QueryGenerator::new(&tables(), WorkloadConfig::default(), 9).unwrap();
        let queries = gen.generate(90);
        let identity: Vec<usize> = (0..queries.len()).collect();
        let mut full = Vec::new();
        Scheduler::new(4, RoutingPolicy::UserSticky).partition_indices_into(&queries, &mut full);
        let (mut exec, mut pos) = (Vec::new(), Vec::new());
        Scheduler::new(4, RoutingPolicy::UserSticky)
            .partition_picks_into(&queries, &identity, &mut exec, &mut pos);
        assert_eq!(exec, full);
        // On the identity selection, pick positions equal global positions.
        assert_eq!(pos, full);

        // A strict subset still covers each pick exactly once.
        let picks: Vec<usize> = (0..queries.len()).step_by(3).collect();
        Scheduler::new(4, RoutingPolicy::UserSticky)
            .partition_picks_into(&queries, &picks, &mut exec, &mut pos);
        let mut seen = vec![false; picks.len()];
        for (exec_part, pos_part) in exec.iter().zip(&pos) {
            assert_eq!(exec_part.len(), pos_part.len());
            for (&qi, &p) in exec_part.iter().zip(pos_part) {
                assert_eq!(picks[p], qi);
                assert!(!seen[p], "pick {p} assigned twice");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partition_indices_agree_with_reference_partition() {
        let mut gen = QueryGenerator::new(&tables(), WorkloadConfig::default(), 7).unwrap();
        let queries = gen.generate(80);
        let expected = Scheduler::new(5, RoutingPolicy::UserSticky).partition(&queries);
        let mut parts = Vec::new();
        Scheduler::new(5, RoutingPolicy::UserSticky).partition_indices_into(&queries, &mut parts);
        for (idx_part, ref_part) in parts.iter().zip(&expected) {
            assert_eq!(idx_part.len(), ref_part.len());
            for (&i, q) in idx_part.iter().zip(ref_part) {
                assert!(std::ptr::eq(&queries[i], *q));
            }
        }
    }
}

//! Statistical sanity checks for the Zipf workload generator: the rank →
//! frequency curve must actually be ordered and heavy-tailed (the paper's
//! temporal-locality premise, Figures 4/5), not merely in-range.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use workload::ZipfSampler;

const ROWS: u64 = 10_000;
const DRAWS: usize = 200_000;

fn row_counts(sampler: &ZipfSampler, seed: u64) -> HashMap<u64, u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for _ in 0..DRAWS {
        *counts.entry(sampler.sample(&mut rng)).or_default() += 1;
    }
    counts
}

/// Mean frequency per popularity decile, hottest decile first.
fn decile_means(counts: &HashMap<u64, u64>) -> Vec<f64> {
    let mut freqs: Vec<u64> = counts.values().copied().collect();
    freqs.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
    let decile = (freqs.len() / 10).max(1);
    freqs
        .chunks(decile)
        .take(10)
        .map(|c| c.iter().sum::<u64>() as f64 / c.len() as f64)
        .collect()
}

#[test]
fn mean_rank_frequency_is_heavy_tailed_and_matches_harmonic_prediction() {
    let sampler = ZipfSampler::new(ROWS, 1.0, 42).unwrap();
    let counts = row_counts(&sampler, 7);

    // Theoretical anchor, not just shape: for s = 1 the hottest rank draws
    // P(1) = 1/H_n ≈ 1/9.788 ≈ 0.102 of all samples (n = 10_000). The
    // rank→row scramble can merge another rank onto the same row, adding
    // at most a few permille, so the window is asymmetric upward.
    // (Sorting observed frequencies and asserting they descend would be a
    // tautology — this pins the curve to the distribution itself.)
    let hottest = *counts.values().max().unwrap() as f64 / DRAWS as f64;
    assert!(
        (0.08..0.14).contains(&hottest),
        "hottest-row share {hottest} far from harmonic prediction 0.102"
    );

    // Heavy-tailed: the hottest decile must dominate the coldest by a
    // large factor (the near-uniform test below shows the same measure
    // staying flat).
    let means = decile_means(&counts);
    let ratio = means[0] / means.last().unwrap().max(1.0);
    assert!(ratio > 10.0, "decile ratio {ratio} too flat for s=1.0");
}

#[test]
fn near_uniform_exponent_is_flat_by_the_same_measure() {
    let sampler = ZipfSampler::new(ROWS, 0.0, 42).unwrap();
    let means = decile_means(&row_counts(&sampler, 7));
    let ratio = means[0] / means.last().unwrap().max(1.0);
    // Not 1.0 even for a perfectly flat sampler: the rank→row scramble
    // merges colliding ranks onto one row (doubling its frequency) and
    // Poisson noise spreads the order statistics, which together push the
    // sorted-decile ratio to ~5 at these parameters. The point is the
    // contrast with the genuinely skewed case, which exceeds 10.
    assert!(
        ratio < 8.0,
        "near-uniform sampler looks skewed: ratio {ratio}"
    );
}

#[test]
fn skew_increases_monotonically_with_exponent() {
    let mut top_shares = Vec::new();
    for (i, s) in [0.4, 0.8, 1.2].into_iter().enumerate() {
        let sampler = ZipfSampler::new(ROWS, s, 42).unwrap();
        let counts = row_counts(&sampler, 100 + i as u64);
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
        let top_1pct: u64 = freqs.iter().take(freqs.len() / 100 + 1).sum();
        top_shares.push(top_1pct as f64 / DRAWS as f64);
    }
    assert!(
        top_shares[0] < top_shares[1] && top_shares[1] < top_shares[2],
        "top-1% shares not increasing with s: {top_shares:?}"
    );
}

#[test]
fn hot_set_is_stable_across_sampling_seeds() {
    // The rank→row scramble is a deterministic property of the sampler, so
    // two independent sampling runs must largely agree on which rows are
    // hottest — popularity is distributional, not sampling noise.
    let sampler = ZipfSampler::new(ROWS, 1.0, 42).unwrap();
    let top = |seed: u64| -> Vec<u64> {
        let counts = row_counts(&sampler, seed);
        let mut rows: Vec<(u64, u64)> = counts.into_iter().collect();
        rows.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
        rows.into_iter().take(20).map(|(r, _)| r).collect()
    };
    let a = top(1);
    let b = top(2);
    let overlap = a.iter().filter(|r| b.contains(r)).count();
    assert!(overlap >= 14, "only {overlap}/20 hot rows overlap");
}

//! Self-test for the lint driver: every rule must trip on its known-bad
//! fixture under `tests/analyze_fixtures/`, the suppression syntax must
//! silence a justified violation, and the live workspace must scan clean.
//! A scanner regression that disarms a rule fails here, not silently.

use sdm_analyze::{analyze_source, analyze_workspace, Finding, RULES};
use std::path::{Path, PathBuf};

/// Workspace root: two levels up from this crate's manifest.
fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels below the workspace root")
        .to_path_buf()
}

/// Loads a fixture and scans it under a pseudo-path that puts it in the
/// rule's scope (fixtures live outside every scanned directory, so the
/// path is chosen per rule).
fn scan_fixture(fixture: &str, pseudo_path: &str) -> Vec<Finding> {
    let path = root().join("tests/analyze_fixtures").join(fixture);
    let content = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    analyze_source(pseudo_path, &content)
}

/// Asserts the fixture trips `rule` at least `min` times and nothing else.
fn assert_trips(fixture: &str, pseudo_path: &str, rule: &str, min: usize) {
    let findings = scan_fixture(fixture, pseudo_path);
    let hits = findings.iter().filter(|f| f.rule == rule).count();
    assert!(
        hits >= min,
        "{fixture}: expected >= {min} `{rule}` findings, got {findings:?}"
    );
    assert!(
        findings.iter().all(|f| f.rule == rule),
        "{fixture}: unexpected extra rules in {findings:?}"
    );
}

#[test]
fn unwrap_fixture_trips_no_unwrap_outside_tests() {
    assert_trips(
        "unwrap_in_lib.rs",
        "crates/dlrm/src/fixture.rs",
        "no-unwrap-outside-tests",
        2,
    );
}

#[test]
fn wall_clock_fixture_trips_no_wall_clock() {
    // Scanned as an sdm-core source: sdm-core is a virtual-clock crate.
    assert_trips(
        "wall_clock.rs",
        "crates/sdm-core/src/fixture.rs",
        "no-wall-clock",
        2,
    );
    // The same file inside a wall-clock crate (bench) is legal.
    assert!(scan_fixture("wall_clock.rs", "crates/bench/src/fixture.rs").is_empty());
}

#[test]
fn unsafe_fixture_trips_unsafe_needs_safety_comment() {
    assert_trips(
        "unsafe_no_comment.rs",
        "crates/embedding/src/fixture.rs",
        "unsafe-needs-safety-comment",
        2,
    );
}

#[test]
fn print_fixture_trips_no_print_in_libs() {
    assert_trips(
        "print_in_lib.rs",
        "crates/workload/src/fixture.rs",
        "no-print-in-libs",
        3,
    );
    // The same file as a binary source is legal.
    assert!(scan_fixture("print_in_lib.rs", "crates/bench/src/bin/fixture.rs").is_empty());
}

#[test]
fn lock_fixture_trips_lock_across_await_style() {
    let findings = scan_fixture("lock_across_submit.rs", "crates/sdm-cache/src/fixture.rs");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "lock-across-await-style")
        .collect();
    assert_eq!(hits.len(), 1, "exactly the held-across case: {findings:?}");
    // The finding must point into `held_across_submit`, not `clean_submit`.
    assert!(
        hits[0].message.contains("guard"),
        "diagnostic names the guard: {}",
        hits[0].message
    );
}

#[test]
fn suppressed_fixture_is_clean() {
    let findings = scan_fixture("suppressed_clean.rs", "crates/workload/src/fixture.rs");
    assert!(findings.is_empty(), "suppressions ignored: {findings:?}");
}

#[test]
fn every_rule_has_a_fixture_that_trips_it() {
    // Keep this list in sync with RULES: adding a rule without a fixture
    // fails here.
    let covered = [
        "no-unwrap-outside-tests",
        "no-wall-clock",
        "unsafe-needs-safety-comment",
        "no-print-in-libs",
        "lock-across-await-style",
    ];
    for rule in RULES {
        assert!(
            covered.contains(&rule.name),
            "rule {} has no fixture coverage",
            rule.name
        );
    }
}

#[test]
fn live_workspace_scans_clean() {
    let findings = analyze_workspace(&root()).expect("workspace scan failed");
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean; run `cargo run -p sdm-analyze` for details:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

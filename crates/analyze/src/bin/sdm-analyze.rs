//! CLI front end for the workspace lint driver.
//!
//! ```text
//! sdm-analyze [--root <dir>] [--list-rules]
//! ```
//!
//! Scans every workspace source file (crates, umbrella `src/`, `tests/`,
//! `examples/`; `vendor/` and `target/` excluded), prints one
//! `file:line: [rule] message` diagnostic per finding and exits non-zero
//! when any finding survives suppression. `--list-rules` prints the rule
//! table and exits.

use std::path::PathBuf;
use std::process::ExitCode;

/// Locates the workspace root: `--root` wins, then the directory holding
/// this crate's manifest (two levels up from `crates/analyze`), then the
/// current directory.
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(root) = manifest.ancestors().nth(2) {
        if root.join("Cargo.toml").is_file() {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = None;
    let mut list_rules = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!("usage: sdm-analyze [--root <workspace-dir>] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sdm-analyze: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    if list_rules {
        for rule in sdm_analyze::RULES {
            println!("{:<28} {}", rule.name, rule.rationale);
            println!("{:<28}   scope: {}", "", rule.scope);
        }
        return ExitCode::SUCCESS;
    }

    let root = workspace_root(root);
    match sdm_analyze::analyze_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "sdm-analyze: workspace clean ({} rules)",
                sdm_analyze::RULES.len()
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!(
                "sdm-analyze: {} finding(s); suppress with `// sdm-analyze: allow(rule)` \
                 next to a written justification",
                findings.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sdm-analyze: failed to scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

//! `sdm-analyze`: the workspace's offline static-analysis driver.
//!
//! The SDM stack enforces several concurrency and hygiene contracts that
//! the type system cannot see: no stripe lock held across SM IO
//! submission, no wall-clock time sources inside virtual-clock code, no
//! panicking `unwrap`/`expect` in library paths, and no `unsafe` without a
//! written justification. This crate is a brace- and string-aware source
//! scanner that turns those conventions into named, individually
//! suppressable rules with `file:line` diagnostics — cheap enough to run
//! on every CI gate, dependency-free so it can never break the build it
//! guards.
//!
//! # Rules
//!
//! | Rule | Scope | Contract |
//! |------|-------|----------|
//! | `no-unwrap-outside-tests` | library sources, non-test code | `.unwrap()` / `.expect(` panic instead of returning typed errors |
//! | `no-wall-clock` | virtual-clock crates | `Instant::now` / `SystemTime::now` leak host time into deterministic code |
//! | `unsafe-needs-safety-comment` | everywhere | every `unsafe` block/fn/impl carries a `// SAFETY:` or `# Safety` justification |
//! | `no-print-in-libs` | library sources, non-test code | `println!`/`eprintln!`/`dbg!` belong to bins, tests and examples |
//! | `lock-across-await-style` | library sources | a held lock guard's scope must not contain an IO submission call |
//!
//! # Suppressions
//!
//! A finding is suppressed by a justification comment naming the rule:
//!
//! * `// sdm-analyze: allow(rule-name)` — on the flagged line or the line
//!   directly above it;
//! * `// sdm-analyze: allow-file(rule-name)` — anywhere in the file,
//!   suppresses the rule for the whole file.
//!
//! Several rules may be listed comma-separated. Suppressions are expected
//! to sit next to a prose justification, mirroring `#[allow]` hygiene.
//!
//! # Honesty of a textual scanner
//!
//! This is a lint, not a proof: it sees tokens, not semantics (the
//! `lock-across-await-style` rule in particular is a heuristic over guard
//! binding scopes). The runtime side of the same contracts — the
//! `sdm_cache::TrackedMutex` lock-order registry and the
//! `assert_no_locks_held` hook at the SM submission boundary — catches
//! what a textual scan cannot, and vice versa.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::path::Path;

/// Crates whose serving paths run on the virtual clock: any wall-clock
/// time source inside them silently breaks determinism and replay.
pub const VIRTUAL_CLOCK_CRATES: &[&str] = &[
    "sdm-core",
    "io-engine",
    "scm-device",
    "workload",
    "sdm-cache",
];

/// Call markers treated as IO submission points by
/// [`lock-across-await-style`](self#rules).
const IO_SUBMIT_MARKERS: &[&str] = &["submit(", "submit_batch(", "drain_each(", "poll_wait("];

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (see [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Static description of one rule, for `--list-rules` and the README table.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule identifier used in diagnostics and suppressions.
    pub name: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// The invariant the rule enforces.
    pub rationale: &'static str,
}

/// Every rule the driver runs, in diagnostic order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "no-unwrap-outside-tests",
        scope: "library sources (crates/*/src, src/), outside #[cfg(test)]",
        rationale: "library code returns typed errors; .unwrap()/.expect() panic the shard",
    },
    RuleInfo {
        name: "no-wall-clock",
        scope: "virtual-clock crates: sdm-core, io-engine, scm-device, workload, sdm-cache",
        rationale: "Instant::now/SystemTime::now leak host time into deterministic replay",
    },
    RuleInfo {
        name: "unsafe-needs-safety-comment",
        scope: "all workspace sources",
        rationale: "every unsafe block/fn/impl must carry a written // SAFETY: justification",
    },
    RuleInfo {
        name: "no-print-in-libs",
        scope: "library sources, outside #[cfg(test)]",
        rationale: "println!/eprintln!/dbg! belong to bins, tests and examples",
    },
    RuleInfo {
        name: "lock-across-await-style",
        scope: "library sources",
        rationale: "a lock guard's scope must not contain an IO submission call",
    },
];

/// How a source file participates in the build, which decides rule scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    /// `crates/*/src/**` (minus `src/bin`) and the umbrella `src/`.
    Lib,
    /// Binaries, examples and build scripts.
    Bin,
    /// Integration tests.
    Test,
    /// Criterion benches.
    Bench,
}

/// Classifies a workspace-relative path; `None` means "do not scan".
fn classify(rel: &str) -> Option<FileKind> {
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel.starts_with("vendor/") || rel.starts_with("target/") {
        return None;
    }
    // Known-bad rule fixtures are scanned only by the self-test.
    if rel.contains("analyze_fixtures/") {
        return None;
    }
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        return Some(FileKind::Test);
    }
    if rel.contains("/benches/") {
        return Some(FileKind::Bench);
    }
    if rel.starts_with("examples/")
        || rel.contains("/examples/")
        || rel.contains("/src/bin/")
        || rel.ends_with("build.rs")
    {
        return Some(FileKind::Bin);
    }
    if rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/")) {
        return Some(FileKind::Lib);
    }
    None
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…`).
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// One source line after lexical analysis.
#[derive(Debug)]
struct Line {
    /// Original text (used for suppression and SAFETY-marker search).
    raw: String,
    /// Text with comment bodies and string/char literal contents blanked,
    /// so rules never match inside prose or data.
    code: String,
    /// Brace depth at the end of the line.
    depth_after: i32,
    /// Inside a `#[cfg(test)]`-gated item's block.
    in_test: bool,
}

/// Lexer state carried across characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    Char,
}

/// Splits `content` into [`Line`]s with comments and literals blanked and
/// per-line brace depth / test-region annotations.
fn lex(content: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut state = LexState::Code;
    let mut depth: i32 = 0;
    // Depth the innermost `#[cfg(test)]` block closes at, when inside one.
    let mut test_close_depth: Option<i32> = None;
    // A `#[cfg(test)]` attribute has been seen and its item's `{` is still
    // pending.
    let mut test_attr_pending = false;

    for raw in content.lines() {
        let mut code = String::with_capacity(raw.len());
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        // Line comments never span lines.
        if state == LexState::LineComment {
            state = LexState::Code;
        }
        let entered_in_test = test_close_depth.is_some();
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                LexState::Code => match c {
                    '/' if next == Some('/') => {
                        state = LexState::LineComment;
                        code.push(' ');
                        i += 1;
                    }
                    '/' if next == Some('*') => {
                        state = LexState::BlockComment(1);
                        code.push(' ');
                        i += 1;
                    }
                    '"' => {
                        state = LexState::Str;
                        code.push('"');
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string: r"…" or r#"…"#.
                        let mut hashes = 0usize;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            state = LexState::RawStr(hashes as u8);
                            code.push('r');
                            for _ in 0..hashes {
                                code.push('#');
                            }
                            code.push('"');
                            i = j;
                        } else {
                            code.push(c);
                        }
                    }
                    '\'' => {
                        // Lifetime (`'a`) vs char literal (`'a'`).
                        let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                            && bytes.get(i + 2) != Some(&'\'');
                        if is_lifetime {
                            code.push(c);
                        } else {
                            state = LexState::Char;
                            code.push('\'');
                        }
                    }
                    '{' => {
                        depth += 1;
                        if test_attr_pending && test_close_depth.is_none() {
                            test_close_depth = Some(depth - 1);
                            test_attr_pending = false;
                        }
                        code.push(c);
                    }
                    '}' => {
                        depth -= 1;
                        if test_close_depth == Some(depth) {
                            test_close_depth = None;
                        }
                        code.push(c);
                    }
                    _ => code.push(c),
                },
                LexState::LineComment => code.push(' '),
                LexState::BlockComment(d) => {
                    if c == '*' && next == Some('/') {
                        let d = d - 1;
                        state = if d == 0 {
                            LexState::Code
                        } else {
                            LexState::BlockComment(d)
                        };
                        code.push(' ');
                        i += 1;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::BlockComment(d + 1);
                        code.push(' ');
                        i += 1;
                    } else {
                        code.push(' ');
                    }
                }
                LexState::Str => match c {
                    '\\' => {
                        code.push(' ');
                        i += 1;
                        code.push(' ');
                    }
                    '"' => {
                        state = LexState::Code;
                        code.push('"');
                    }
                    _ => code.push(' '),
                },
                LexState::RawStr(hashes) => {
                    if c == '"' {
                        let mut j = i + 1;
                        let mut seen = 0u8;
                        while seen < hashes && bytes.get(j) == Some(&'#') {
                            seen += 1;
                            j += 1;
                        }
                        if seen == hashes {
                            state = LexState::Code;
                            code.push('"');
                            for _ in 0..hashes {
                                code.push('#');
                            }
                            i = j - 1;
                        } else {
                            code.push(' ');
                        }
                    } else {
                        code.push(' ');
                    }
                }
                LexState::Char => match c {
                    '\\' => {
                        code.push(' ');
                        i += 1;
                        code.push(' ');
                    }
                    '\'' => {
                        state = LexState::Code;
                        code.push('\'');
                    }
                    _ => code.push(' '),
                },
            }
            i += 1;
        }
        // Unterminated ordinary string/char literals do not span lines in
        // practice; reset so one odd quote cannot blank the rest of a file.
        if matches!(state, LexState::Str | LexState::Char) {
            state = LexState::Code;
        }
        if code.trim_start().starts_with("#[cfg(test)]") || code.contains("#[cfg(test)]") {
            test_attr_pending = true;
        }
        lines.push(Line {
            raw: raw.to_string(),
            code,
            depth_after: depth,
            in_test: entered_in_test || test_close_depth.is_some(),
        });
    }
    lines
}

/// True when `line` (or the line above) carries a line-level suppression
/// for `rule`, or the file carries a file-level one.
fn suppressed(lines: &[Line], idx: usize, rule: &str, file_allows: &[String]) -> bool {
    if file_allows.iter().any(|r| r == rule) {
        return true;
    }
    let hit = |l: &Line| {
        l.raw
            .split("sdm-analyze: allow(")
            .nth(1)
            .and_then(|rest| rest.split(')').next())
            .is_some_and(|list| list.split(',').any(|r| r.trim() == rule))
    };
    // A suppression on the line above only counts when that line is pure
    // comment — a trailing suppression on a *code* line covers that line
    // alone, not its successor.
    hit(&lines[idx]) || (idx > 0 && lines[idx - 1].code.trim().is_empty() && hit(&lines[idx - 1]))
}

/// Collects the file-level `allow-file(...)` suppressions.
fn file_allows(lines: &[Line]) -> Vec<String> {
    let mut out = Vec::new();
    for l in lines {
        if let Some(rest) = l.raw.split("sdm-analyze: allow-file(").nth(1) {
            if let Some(list) = rest.split(')').next() {
                out.extend(list.split(',').map(|r| r.trim().to_string()));
            }
        }
    }
    out
}

/// True when `code` contains `needle` not preceded/followed by an
/// identifier character (poor man's word boundary).
fn contains_word(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// True when an `unsafe` site at `idx` has a written justification: a
/// `SAFETY:` comment or `# Safety` doc section on the same line or within
/// the preceding comment/attribute run (at most `max_code_gap` intervening
/// code lines, looking back at most 12 lines — match-arm pairs may share
/// one comment).
fn has_safety_marker(lines: &[Line], idx: usize) -> bool {
    let marked = |l: &Line| {
        l.raw.contains("SAFETY:") || l.raw.contains("# Safety") || l.raw.contains("Safety:")
    };
    if marked(&lines[idx]) {
        return true;
    }
    let max_code_gap = 3usize;
    let mut code_gap = 0usize;
    for back in 1..=12usize {
        let Some(i) = idx.checked_sub(back) else {
            break;
        };
        let l = &lines[i];
        if marked(l) {
            return true;
        }
        let trimmed = l.code.trim();
        let is_comment_or_attr = trimmed.is_empty() || trimmed.starts_with("#[");
        if !is_comment_or_attr {
            code_gap += 1;
            if code_gap > max_code_gap {
                return false;
            }
        }
    }
    false
}

/// Analyzes one source file. `rel_path` must be workspace-relative with
/// `/` separators — it decides which rules apply. Returns every finding,
/// suppressions already applied.
pub fn analyze_source(rel_path: &str, content: &str) -> Vec<Finding> {
    let Some(kind) = classify(rel_path) else {
        return Vec::new();
    };
    let lines = lex(content);
    let allows = file_allows(&lines);
    let mut findings = Vec::new();
    let mut push = |idx: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            path: rel_path.to_string(),
            line: idx + 1,
            rule,
            message,
        });
    };

    let in_virtual_clock_crate =
        crate_of(rel_path).is_some_and(|c| VIRTUAL_CLOCK_CRATES.contains(&c));

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();

        // no-unwrap-outside-tests
        if kind == FileKind::Lib
            && !line.in_test
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !suppressed(&lines, idx, "no-unwrap-outside-tests", &allows)
        {
            push(
                idx,
                "no-unwrap-outside-tests",
                "library code must return typed errors, not panic via unwrap()/expect()"
                    .to_string(),
            );
        }

        // no-wall-clock
        if in_virtual_clock_crate
            && (code.contains("Instant::now") || code.contains("SystemTime::now"))
            && !suppressed(&lines, idx, "no-wall-clock", &allows)
        {
            push(
                idx,
                "no-wall-clock",
                "wall-clock time source in a virtual-clock crate breaks deterministic replay"
                    .to_string(),
            );
        }

        // unsafe-needs-safety-comment
        if contains_word(code, "unsafe")
            && !has_safety_marker(&lines, idx)
            && !suppressed(&lines, idx, "unsafe-needs-safety-comment", &allows)
        {
            push(
                idx,
                "unsafe-needs-safety-comment",
                "unsafe block/fn/impl without a `// SAFETY:` (or `# Safety`) justification"
                    .to_string(),
            );
        }

        // no-print-in-libs
        if kind == FileKind::Lib
            && !line.in_test
            && ["println!", "eprintln!", "print!", "eprint!", "dbg!"]
                .iter()
                .any(|m| contains_word(code, m.trim_end_matches('!')) && code.contains(m))
            && !suppressed(&lines, idx, "no-print-in-libs", &allows)
        {
            push(
                idx,
                "no-print-in-libs",
                "print/debug macro in library code; route output through bins or sdm-metrics"
                    .to_string(),
            );
        }
    }

    // lock-across-await-style: a guard binding's enclosing scope must not
    // contain an IO submission call. Guard bindings are recognised
    // textually: `let [mut] <name> = …lock(…)` / `…stripe_lock(…)`.
    if kind == FileKind::Lib {
        for (idx, line) in lines.iter().enumerate() {
            let code = line.code.as_str();
            let is_binding = code.contains("let ")
                && (code.contains(".lock()") || code.contains("stripe_lock("));
            if !is_binding || line.in_test {
                continue;
            }
            let guard_name = code
                .split("let ")
                .nth(1)
                .map(|r| r.trim_start_matches("mut "))
                .and_then(|r| r.split(|c: char| !(c.is_alphanumeric() || c == '_')).next())
                .unwrap_or("")
                .to_string();
            let scope_depth = line.depth_after;
            for (jdx, later) in lines.iter().enumerate().skip(idx + 1) {
                // Guard explicitly dropped: the scan stops being relevant.
                if !guard_name.is_empty() && later.code.contains(&format!("drop({guard_name})")) {
                    break;
                }
                if IO_SUBMIT_MARKERS.iter().any(|m| later.code.contains(m))
                    && !suppressed(&lines, jdx, "lock-across-await-style", &allows)
                {
                    findings.push(Finding {
                        path: rel_path.to_string(),
                        line: jdx + 1,
                        rule: "lock-across-await-style",
                        message: format!(
                            "IO submission inside the scope of lock guard `{guard_name}` \
                             (acquired line {}); submit only after the guard is released",
                            idx + 1
                        ),
                    });
                }
                if later.depth_after < scope_depth {
                    break;
                }
            }
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Recursively collects `.rs` files under `dir`, returning workspace
/// relative paths (with `/` separators) sorted for deterministic output.
fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            collect_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Analyzes the whole workspace rooted at `root`. Returns findings across
/// every scannable file, sorted by path and line.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        if classify(rel).is_none() {
            continue;
        }
        let content = std::fs::read_to_string(root.join(rel))?;
        findings.extend(analyze_source(rel, &content));
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_findings(src: &str) -> Vec<Finding> {
        analyze_source("crates/dlrm/src/fixture.rs", src)
    }

    #[test]
    fn unwrap_in_lib_is_flagged_and_test_mod_is_exempt() {
        let src = "fn f() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn g() { y.unwrap(); z.expect(\"msg\"); }\n\
                   }\n";
        let f = lib_findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[0].rule, "no-unwrap-outside-tests");
    }

    #[test]
    fn unwrap_in_strings_and_comments_is_ignored() {
        let src = "// calls .unwrap() somewhere\n\
                   fn f() { let s = \".unwrap()\"; g(s); }\n\
                   /* .expect( */\n";
        assert!(lib_findings(src).is_empty());
    }

    #[test]
    fn line_suppression_covers_same_and_next_line() {
        let src = "// justification: startup-only path\n\
                   // sdm-analyze: allow(no-unwrap-outside-tests)\n\
                   fn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap(); } // sdm-analyze: allow(no-unwrap-outside-tests)\n\
                   fn h() { z.unwrap(); }\n";
        let f = lib_findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn file_suppression_covers_whole_file() {
        let src = "// sdm-analyze: allow-file(no-unwrap-outside-tests)\n\
                   fn f() { x.unwrap(); }\n\
                   fn g() { y.unwrap(); }\n";
        assert!(lib_findings(src).is_empty());
    }

    #[test]
    fn wall_clock_only_flagged_in_virtual_clock_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let fc = analyze_source("crates/sdm-core/src/fixture.rs", src);
        assert_eq!(fc.len(), 1);
        assert_eq!(fc[0].rule, "no-wall-clock");
        // The bench crate measures wall time on purpose.
        assert!(analyze_source("crates/bench/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_marker() {
        let bad = "fn f() { unsafe { g(); } }\n";
        let f = lib_findings(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-needs-safety-comment");
        let good = "// SAFETY: g has no preconditions here.\n\
                    fn f() { unsafe { g(); } }\n";
        assert!(lib_findings(good).is_empty());
        let doc = "/// # Safety\n\
                   ///\n\
                   /// Caller must ensure SSE2.\n\
                   pub unsafe fn f() {}\n";
        assert!(lib_findings(doc).is_empty());
    }

    #[test]
    fn print_in_lib_flagged_but_not_in_bins_or_tests() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert_eq!(lib_findings(src).len(), 1);
        assert!(analyze_source("crates/bench/src/bin/exp_x.rs", src).is_empty());
        assert!(analyze_source("tests/foo.rs", src).is_empty());
        assert!(analyze_source("examples/foo.rs", src).is_empty());
    }

    #[test]
    fn lock_guard_scope_containing_submit_is_flagged() {
        let bad = "fn f(&self) {\n\
                   let guard = self.stripes[0].lock();\n\
                   self.engine.submit(req);\n\
                   }\n";
        let f = lib_findings(bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-across-await-style");
        assert_eq!(f[0].line, 3);
        // Submission after the scope closes is fine.
        let good = "fn f(&self) {\n\
                    {\n\
                    let guard = self.stripes[0].lock();\n\
                    use_it(&guard);\n\
                    }\n\
                    self.engine.submit(req);\n\
                    }\n";
        assert!(lib_findings(good).is_empty(), "{:?}", lib_findings(good));
        // An explicit drop releases the guard early.
        let dropped = "fn f(&self) {\n\
                       let guard = self.stripes[0].lock();\n\
                       drop(guard);\n\
                       self.engine.submit(req);\n\
                       }\n";
        assert!(lib_findings(dropped).is_empty());
    }

    #[test]
    fn fixture_directory_and_vendor_are_never_scanned() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(analyze_source("tests/analyze_fixtures/no_unwrap.rs", src).is_empty());
        assert!(analyze_source("vendor/serde/src/lib.rs", src).is_empty());
        assert!(analyze_source("target/debug/build/foo.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n\
                   const P: &str = r#\"contains .unwrap() and unsafe\"#;\n\
                   const Q: char = '{';\n\
                   fn g() { h(); }\n";
        assert!(lib_findings(src).is_empty());
    }

    #[test]
    fn rules_table_matches_rule_names() {
        let names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "no-unwrap-outside-tests",
                "no-wall-clock",
                "unsafe-needs-safety-comment",
                "no-print-in-libs",
                "lock-across-await-style",
            ]
        );
    }
}

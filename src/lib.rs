//! Umbrella crate for the SDM DLRM reproduction suite.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the individual crates for the actual APIs.

pub use cluster;
pub use dlrm;
pub use embedding;
pub use io_engine;
pub use scm_device;
pub use sdm_cache;
pub use sdm_core;
pub use sdm_metrics;
pub use workload;

//! Umbrella crate for the SDM DLRM reproduction suite.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the individual crates for the actual APIs.
//!
//! # Workspace layout
//!
//! The stack is layered bottom-up (see the README for the full dependency
//! diagram):
//!
//! - [`sdm_metrics`] — simulated clock, latency histograms, byte/rate units
//! - [`scm_device`] — SCM technology profiles, block devices, NVMe queues
//! - [`io_engine`] — io_uring-style submission/completion rings and mmap
//! - [`embedding`] — table descriptors, quantization, pruning, pooling,
//!   SM placement layout
//! - [`sdm_cache`] — row and pooled-embedding caches with warmup tracking
//! - [`workload`] — Zipf query synthesis, traces, locality analysis
//! - [`dlrm`] — model zoo, MLP stacks, backends, the inference engine
//! - [`sdm_core`] — placement policies, load transforms, updates, and the
//!   serving loop tying everything together
//! - [`cluster`] — host configs, power, sizing, scale-out scenarios
//!
//! External dependencies are vendored offline shims (see `vendor/README.md`).

pub use cluster;
pub use dlrm;
pub use embedding;
pub use io_engine;
pub use scm_device;
pub use sdm_cache;
pub use sdm_core;
pub use sdm_metrics;
pub use workload;

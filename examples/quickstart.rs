//! Quickstart: build a small DLRM model, put its user embeddings on
//! simulated slow memory behind the SDM stack, and serve a few queries.
//!
//! Run with: `cargo run --example quickstart`

use dlrm::model_zoo;
use sdm_core::{SdmConfig, SdmSystem};
use workload::{QueryGenerator, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small model: 4 user tables + 2 item tables, 2000 rows each.
    let model = model_zoo::tiny(4, 2, 2_000);
    println!(
        "model `{}`: {} tables, {} of embeddings",
        model.name,
        model.tables.len(),
        model.embedding_capacity()
    );

    // Default SDM deployment: user tables on 2 simulated Optane SSDs, item
    // tables in fast memory, dual row cache + pooled-embedding cache in
    // front.
    let mut system = SdmSystem::build(&model, SdmConfig::default(), 42)?;

    // Generate a query stream and serve it.
    let workload = WorkloadConfig {
        item_batch: model.item_batch,
        user_population: 1_000,
        ..WorkloadConfig::default()
    };
    let mut generator = QueryGenerator::new(&model.tables, workload, 42)?;
    let queries = generator.generate(200);
    let report = system.run_queries(&queries)?;

    println!("\nserved {} queries", report.queries);
    println!("  mean latency  : {}", report.mean_latency);
    println!("  p95 latency   : {}", report.p95_latency);
    println!("  p99 latency   : {}", report.p99_latency);
    println!("  single-stream QPS: {:.1}", report.qps_single_stream);

    let stats = system.manager().stats();
    println!("\nSDM memory manager:");
    println!(
        "  row-cache hit rate    : {:.1}%",
        stats.row_cache_hit_rate() * 100.0
    );
    println!(
        "  pooled-cache hit rate : {:.1}%",
        stats.pooled_cache_hit_rate() * 100.0
    );
    println!("  reads that went to SM : {}", stats.sm_reads);
    println!(
        "  SM read amplification : {:.2}x",
        stats.read_amplification()
    );
    println!(
        "  device IOs issued     : {}",
        system.manager().io_engine().stats().submitted
    );
    Ok(())
}

//! Deployment-time auto-tuning in the spirit of the paper's "Tuning API":
//! sweep placement policies and cache splits for a model and report which
//! configuration serves it best.
//!
//! Run with: `cargo run --release --example placement_tuning`

use dlrm::model_zoo;
use sdm_core::{PlacementPolicy, SdmConfig, SdmSystem};
use sdm_metrics::units::Bytes;
use workload::{QueryGenerator, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = model_zoo::scaled_model(&model_zoo::m2(), 200_000, 40.0);
    let workload = WorkloadConfig {
        item_batch: 8,
        user_population: 3_000,
        ..WorkloadConfig::default()
    };
    let mut generator = QueryGenerator::new(&model.tables, workload, 21)?;
    let queries = generator.generate(120);

    let budgets = [
        Bytes::ZERO,
        model.user_capacity() / 4,
        model.user_capacity() / 2,
    ];
    let mut best: Option<(String, f64)> = None;
    println!(
        "candidate configurations for {} ({} tables):",
        model.name,
        model.tables.len()
    );
    for (policy_name, policy) in [
        ("SM only + cache", PlacementPolicy::SmOnlyWithCache),
        (
            "fixed FM (25%) + SM",
            PlacementPolicy::FixedFmThenSm {
                dram_budget: budgets[1],
            },
        ),
        (
            "fixed FM (50%) + SM",
            PlacementPolicy::FixedFmThenSm {
                dram_budget: budgets[2],
            },
        ),
        (
            "per-table cache enablement",
            PlacementPolicy::PerTableCacheEnablement {
                min_zipf_exponent: 0.8,
            },
        ),
    ] {
        for cache_mib in [4u64, 16] {
            let mut config = SdmConfig::default().with_placement(policy.clone());
            config.device_capacity = Bytes::from_mib(256);
            config.fm_budget = Bytes::from_mib(64);
            config.cache = sdm_cache::CacheConfig::with_total_budget(Bytes::from_mib(cache_mib));
            let mut system = SdmSystem::build(&model, config, 21)?;
            let _ = system.run_queries(&queries[..40])?;
            let report = system.run_queries(&queries[40..])?;
            let label = format!("{policy_name}, {cache_mib} MiB cache");
            println!(
                "  {label:<42} qps={:>8.1}  p95={:>10}  hit rate={:>5.1}%",
                report.qps_single_stream,
                report.p95_latency,
                system.manager().stats().row_cache_hit_rate() * 100.0
            );
            if best
                .as_ref()
                .map(|(_, q)| report.qps_single_stream > *q)
                .unwrap_or(true)
            {
                best = Some((label, report.qps_single_stream));
            }
        }
    }
    let (label, qps) = best.expect("at least one configuration evaluated");
    println!("\nbest configuration: {label} at {qps:.1} QPS/stream");
    Ok(())
}

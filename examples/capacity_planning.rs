//! Datacenter capacity planning for the paper's three models: memory and
//! IOPS demand, host sizing and fleet power with and without SDM.
//!
//! Run with: `cargo run --example capacity_planning`

use cluster::sizing::{size_ssds, SizingInputs};
use cluster::{HostConfig, PowerModel, ScenarioComparison, ServingScenario};
use dlrm::{analysis, model_zoo};
use sdm_metrics::units::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = PowerModel::default();
    println!("host platforms (Table 7):");
    for host in HostConfig::table7() {
        println!(
            "  {:<7} sockets={} dram={:>10} ssd={:>10} est. power={}",
            host.name,
            host.cpu_sockets,
            host.dram,
            host.ssd_capacity(),
            power.host_power(&host)
        );
    }

    for (model, qps_per_host) in [
        (model_zoo::m1(), 120.0),
        (model_zoo::m2(), 450.0),
        (model_zoo::m3(), 3150.0),
    ] {
        let summary = analysis::capacity_summary(&model.tables);
        let user_tables = model.user_tables();
        let avg_pf = user_tables
            .iter()
            .map(|t| t.pooling_factor as f64)
            .sum::<f64>()
            / user_tables.len() as f64;
        let raw_iops =
            analysis::iops_requirement(user_tables.iter().copied(), qps_per_host, model.item_batch);
        println!(
            "\n{}: {} embeddings ({:.0}% user side)",
            model.name,
            model.embedding_capacity(),
            summary.user_fraction() * 100.0
        );
        println!(
            "  user-embedding IOPS at {qps_per_host} QPS/host: {:.2} M raw",
            raw_iops / 1e6
        );
        for hit in [0.8f64, 0.9, 0.96] {
            let sizing = size_ssds(SizingInputs {
                qps: qps_per_host,
                user_tables: user_tables.len() as u64,
                avg_pooling_factor: avg_pf,
                cache_hit_rate: hit,
                iops_per_ssd: 4_000_000.0,
            })?;
            println!(
                "    at {:>2.0}% cache hit rate: {:>6.2} MIOPS to SM -> {} Optane SSD(s)",
                hit * 100.0,
                sizing.sm_iops / 1e6,
                sizing.ssds_needed
            );
        }
    }

    println!("\nfleet power for M1 (Table 8 arithmetic):");
    let comparison = ScenarioComparison {
        total_qps: 240.0 * 1200.0,
        scenarios: vec![
            ServingScenario::new("HW-L (DRAM only)", 240.0, Watts(1.0)),
            ServingScenario::new("HW-SS + SDM", 120.0, Watts(0.4)),
        ],
    };
    for row in comparison.evaluate()? {
        println!(
            "  {:<18} hosts={:>5} normalized power={:.2}",
            row.name, row.total_hosts, row.normalized_total_power
        );
    }
    println!("  SDM saving: {:.0}%", comparison.power_saving(1)? * 100.0);
    Ok(())
}

//! The paper's §5.1 scenario in miniature: serve model M1 from Nand Flash
//! on a small host, watch the cache reach its steady-state hit rate, apply a
//! model update and watch the warmup transient.
//!
//! Run with: `cargo run --release --example serve_m1_on_nand`

use dlrm::model_zoo;
use sdm_core::{ModelUpdater, SdmConfig, SdmSystem, UpdateKind};
use sdm_metrics::units::Bytes;
use workload::{QueryGenerator, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // M1 scaled down so it materialises in milliseconds; the table mix,
    // pooling factors and skew are preserved.
    let model = model_zoo::scaled_model(&model_zoo::m1(), 200_000, 40.0);
    let mut config = SdmConfig::default().with_nand_flash();
    config.device_capacity = Bytes::from_mib(256);
    config.cache = sdm_cache::CacheConfig::with_total_budget(Bytes::from_mib(16));
    config.fm_budget = Bytes::from_mib(32);
    let mut system = SdmSystem::build(&model, config, 7)?;

    let workload = WorkloadConfig {
        item_batch: 16,
        user_population: 3_000,
        user_zipf_exponent: 0.9,
        inference_eval: false,
    };
    let mut generator = QueryGenerator::new(&model.tables, workload, 7)?;

    println!("serving M1 (scaled) from Nand Flash; watching the cache warm up:");
    for round in 0..6 {
        let queries = generator.generate(50);
        let report = system.run_queries(&queries)?;
        println!(
            "  round {round}: p95 = {:>10}, row-cache hit rate so far = {:.1}%",
            report.p95_latency,
            system.manager().stats().row_cache_hit_rate() * 100.0
        );
    }

    println!("\napplying a full model update (new embedding snapshot)...");
    let update = ModelUpdater::apply(system.manager_mut(), UpdateKind::Full, 99)?;
    println!(
        "  wrote {} to SM in {}, min update interval at rated endurance: {:.4} days",
        update.bytes_written, update.write_time, update.min_update_interval_days
    );

    println!("\npost-update warmup:");
    for round in 0..4 {
        let queries = generator.generate(50);
        let report = system.run_queries(&queries)?;
        println!("  round {round}: p95 = {:>10}", report.p95_latency);
    }
    println!(
        "\nfinal stats: {:?}",
        system.manager().stats().sm_op_latency
    );
    Ok(())
}

//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros, numeric-range and collection strategies, and a deterministic
//! runner: every case derives its RNG from `ProptestConfig::seed` and the
//! case index, so a failure report (`case N, seed 0x...`) reproduces
//! exactly. There is no shrinking — failures print the case index instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 256;

/// Default RNG seed. Pinned so CI runs are stable; override per-suite with
/// `ProptestConfig { seed, .. }`.
pub const DEFAULT_SEED: u64 = 0x5d_2022;

/// Runner configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
    /// Base seed; each case's RNG is derived from `seed` and the case index.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases with the default pinned seed.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }

    /// A config with an explicit seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Derives the deterministic RNG for one case.
    pub fn rng_for_case(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of generated values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

/// Number of elements a collection strategy may produce.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange(exact..exact + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange(range)
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange(*range.start()..range.end() + 1)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let range = self.size.0.clone();
            let len = if range.len() <= 1 {
                range.start
            } else {
                rng.gen_range(range)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng = config.rng_for_case(case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "property {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name),
                            case,
                            config.cases,
                            config.seed,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..255, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn exact_size_vecs(v in prop::collection::vec(0.0f64..1.0, 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn tuples_compose(t in (0u32..4, 0u64..500, 1usize..300)) {
            prop_assert!(t.0 < 4);
            prop_assert!(t.1 < 500);
            prop_assert!(t.2 >= 1 && t.2 < 300);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let config = ProptestConfig::with_cases(4);
        let strat = crate::collection::vec(0u64..1000, 3..10);
        let a: Vec<Vec<u64>> = (0..4)
            .map(|c| strat.generate(&mut config.rng_for_case(c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..4)
            .map(|c| strat.generate(&mut config.rng_for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}

//! Derive macros for the vendored serde shim.
//!
//! The shim traits are empty markers, so the derives only need to name the
//! type correctly (including generic parameters). Parsing is done directly
//! on the token stream — no `syn`/`quote`, since the offline environment has
//! no registry access.

use proc_macro::{TokenStream, TokenTree};

struct Target {
    name: String,
    /// Generic parameter list exactly as written, without the angle brackets
    /// (e.g. `'a, T: Clone, const N: usize`). Empty when the type is not
    /// generic.
    params: String,
    /// Parameter *names* only, for the `for Type<...>` position
    /// (e.g. `'a, T, N`).
    args: String,
}

/// Extracts the type name and generic parameters from a struct/enum item.
fn parse_target(input: TokenStream) -> Target {
    let mut iter = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct` / `enum` keyword.
    for tt in iter.by_ref() {
        match &tt {
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => break,
            _ => continue,
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    // Collect the generic parameter tokens, if any.
    let mut params = String::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            params.push_str(&tt.to_string());
            params.push(' ');
        }
    }
    let args = param_names(&params);
    Target { name, params, args }
}

/// Reduces a generic parameter list to the bare parameter names.
fn param_names(params: &str) -> String {
    let mut names = Vec::new();
    for part in split_top_level_commas(params) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        // `const N : usize` → N; `'a` → 'a; `T : Clone` → T.
        let head = part.split(':').next().unwrap_or(part).trim();
        let head = head.strip_prefix("const").unwrap_or(head).trim();
        // Drop defaults (`T = u8`).
        let head = head.split('=').next().unwrap_or(head).trim();
        names.push(head.to_string());
    }
    names.join(", ")
}

fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i32;
    for c in s.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

fn empty_impl(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let t = parse_target(input);
    let mut params = String::new();
    if let Some(lt) = extra_lifetime {
        params.push_str(lt);
        if !t.params.is_empty() {
            params.push_str(", ");
        }
    }
    params.push_str(&t.params);
    let generics = if params.trim().is_empty() {
        String::new()
    } else {
        format!("<{params}>")
    };
    let ty_args = if t.args.is_empty() {
        String::new()
    } else {
        format!("<{}>", t.args)
    };
    format!(
        "#[automatically_derived] impl{generics} {trait_path} for {}{ty_args} {{}}",
        t.name
    )
    .parse()
    .expect("serde shim derive: generated impl failed to parse")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Serialize", None)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Deserialize<'de>", Some("'de"))
}

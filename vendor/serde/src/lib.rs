//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal shim: [`Serialize`] and [`Deserialize`] are marker
//! traits and the derive macros emit empty implementations. Code that only
//! *derives* the traits (every use in this workspace) compiles unchanged;
//! swapping in real serde later is a one-line manifest change per crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Namespace parity with `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Namespace parity with `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! Implements a deterministic xoshiro256** generator behind the `StdRng`
//! name, the `Rng::gen_range` / `gen` / `gen_bool` surface for the numeric
//! types the simulator samples, and `seq::SliceRandom` (Fisher–Yates
//! shuffle, uniform choose). The generator is *not* cryptographically
//! secure — it only needs to be fast, deterministic, and statistically
//! reasonable for workload synthesis.

use std::ops::Range;

/// Low-level generator interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range `lo..hi`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of `T` from its canonical uniform distribution
    /// (`[0, 1)` for floats, full width for integers, fair coin for bool).
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 53 high bits of entropy to a float in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a canonical uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Casting an f64 just below 1.0 can round up to exactly 1.0f32,
        // which would violate the half-open [0, 1) contract; reject and
        // redraw (probability ~2^-25 per draw).
        loop {
            let v = unit_f64(rng.next_u64()) as f32;
            if v < 1.0 {
                return v;
            }
        }
    }
}

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $u as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        // `start + span * u` can round up to exactly `end`; reject and
        // redraw to keep the half-open contract.
        loop {
            let v = self.start + span * unit_f64(rng.next_u64());
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        // The f64→f32 cast and the fused arithmetic can both round up to
        // exactly `end` (~once per 2^24 draws); reject and redraw.
        loop {
            let v = self.start + span * unit_f64(rng.next_u64()) as f32;
            if v < self.end {
                return v;
            }
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 — deterministic, fast, and
    /// good enough statistically for workload synthesis.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Shuffle and uniform-choice operations on slices.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}

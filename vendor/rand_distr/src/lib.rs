//! Offline stand-in for the parts of `rand_distr` 0.4 this workspace uses:
//! the [`Distribution`] trait and a [`Zipf`] sampler.
//!
//! The Zipf sampler implements rejection-inversion ("Rejection-inversion to
//! generate variates from monotone discrete distributions", Hörmann &
//! Derflinger 1996) — the same algorithm real `rand_distr` uses — so it is
//! O(1) per sample with no table precomputation and statistically faithful:
//! the workload tests assert real rank-frequency concentration, not just
//! range membership.

use rand::{Rng, RngCore};
use std::fmt;

/// Types that sample values of `T` from a parameterised distribution.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Zipf`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` was zero.
    NTooSmall,
    /// The exponent was non-positive or not finite.
    STooSmall,
}

impl fmt::Display for ZipfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZipfError::NTooSmall => write!(f, "zipf: n must be at least 1"),
            ZipfError::STooSmall => write!(f, "zipf: s must be positive and finite"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over ranks `1..=n` with `P(k) ∝ k^-s`.
///
/// Samples are returned as `F` (the rank as a float), matching `rand_distr`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf<F> {
    n: F,
    s: F,
    /// `H(1.5) - h(1)` — upper bound of the inversion domain.
    h_x1: F,
    /// `H(n + 0.5)` — lower bound of the inversion domain.
    h_n: F,
    /// Acceptance shortcut threshold.
    q: F,
}

impl Zipf<f64> {
    /// Creates a Zipf distribution over `1..=n` with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NTooSmall);
        }
        if s <= 0.0 || !s.is_finite() {
            return Err(ZipfError::STooSmall);
        }
        let nf = n as f64;
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(nf + 0.5, s);
        let q = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Ok(Zipf {
            n: nf,
            s,
            h_x1,
            h_n,
            q,
        })
    }
}

/// `H(x) = ∫ t^-s dt`, up to an additive constant.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// `H⁻¹(y) = (1 + y(1-s))^(1/(1-s))`, expressed as
/// `exp(y · ln(1 + t)/t)` with `t = y(1-s)` so it stays finite as `s → 1`
/// (where it degenerates to `exp(y)`).
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    // Clamp to the domain of log1p; values below -1 can only arise from
    // floating-point rounding at the boundary.
    if t < -1.0 {
        t = -1.0;
    }
    (x * helper_inverse(t)).exp()
}

/// `helper(x) = (e^x - 1) / x`, continuous at 0.
fn helper(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

/// `helper_inverse(x) = ln(1 + x) / x`, continuous at 0.
fn helper_inverse(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * 0.5 * (1.0 - x / 3.0)
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u01 = unit_open(rng);
            let u = self.h_n + u01 * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n);
            if k - x <= self.q || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k;
            }
        }
    }
}

/// Uniform in the open interval `(0, 1)` — the inversion needs to avoid 0.
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(Zipf::new(0, 1.0), Err(ZipfError::NTooSmall));
        assert_eq!(Zipf::new(10, 0.0), Err(ZipfError::STooSmall));
        assert_eq!(Zipf::new(10, -1.0), Err(ZipfError::STooSmall));
        assert!(Zipf::new(10, 1.0).is_ok());
    }

    #[test]
    fn samples_are_valid_ranks() {
        let z = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&k));
            assert_eq!(k.fract(), 0.0);
        }
    }

    #[test]
    fn rank_frequencies_follow_power_law() {
        let z = Zipf::new(1000, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let draws = 200_000;
        for _ in 0..draws {
            *counts.entry(z.sample(&mut rng) as u64).or_default() += 1;
        }
        // With s = 1 and n = 1000, P(1) = 1 / H_1000 ≈ 0.1336.
        let p1 = counts[&1] as f64 / draws as f64;
        assert!((p1 - 0.1336).abs() < 0.01, "P(rank 1) = {p1}");
        // Rank 1 must dominate rank 10 by roughly 10x.
        let ratio = counts[&1] as f64 / counts[&10] as f64;
        assert!((6.0..16.0).contains(&ratio), "rank1/rank10 = {ratio}");
    }

    #[test]
    fn near_uniform_for_tiny_exponent() {
        let z = Zipf::new(100, 1e-3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u64; 101];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let min = *counts[1..].iter().min().unwrap() as f64;
        let max = *counts[1..].iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "min {min} max {max}");
    }
}

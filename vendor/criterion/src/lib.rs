//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use: `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function`, `bench_with_input`, and `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery it runs a short warm-up,
//! then times `sample_size` batches and reports min/median/mean per
//! iteration. Good enough to spot order-of-magnitude regressions locally;
//! not a replacement for real criterion output.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group, e.g. `lookup/64`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the measured closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Self {
        Bencher {
            iters_per_sample: 0,
            samples: Vec::new(),
            target_samples,
        }
    }

    /// Times `routine`, recording `target_samples` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and calibrate the batch size so one sample takes roughly
        // 1 ms (bounded to keep total bench time low).
        let calibration_start = Instant::now();
        let mut calls = 0u64;
        while calibration_start.elapsed() < Duration::from_millis(5) && calls < 1_000_000 {
            black_box(routine());
            calls += 1;
        }
        let per_call = calibration_start.elapsed().as_nanos().max(1) / u128::from(calls.max(1));
        self.iters_per_sample = (1_000_000 / per_call.max(1)).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{label:<40} min {:>12} median {:>12} mean {:>12} ({} iters x {} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            self.iters_per_sample,
            per_iter.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Sets a time budget; accepted for API parity, ignored by the shim.
    pub fn measurement_time(&mut self, _budget: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(20);
        f(&mut bencher);
        bencher.report(&id.to_string());
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut bencher = Bencher::new(5);
        let mut x = 0u64;
        bencher.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert_eq!(bencher.samples.len(), 5);
        assert!(bencher.iters_per_sample >= 1);
    }

    #[test]
    fn group_api_composes() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}

#!/usr/bin/env bash
# Tier-1 verification for the SDM workspace. Run from anywhere; everything
# is relative to the repository root.
#
#   ./ci.sh        # full gate: fmt, clippy, build, test, bench compile
#   ./ci.sh quick  # skip fmt/clippy (what the paper-repro driver runs)
#   ./ci.sh bench  # run the criterion benches (quick shim) and write
#                  # BENCH_hotpath.json via the exp_hotpath experiment

set -euo pipefail
cd "$(dirname "${BASH_SOURCE[0]}")"

mode="${1:-full}"

if [[ "$mode" == "bench" ]]; then
    echo "==> cargo bench --workspace (quick criterion shim)"
    cargo bench --workspace

    echo "==> exp_hotpath --quick (writes BENCH_hotpath.json)"
    cargo run --release -p sdm-bench --bin exp_hotpath -- --quick

    echo "Bench gate passed; see BENCH_hotpath.json."
    exit 0
fi

if [[ "$mode" == "full" ]]; then
    echo "==> cargo fmt --all --check"
    cargo fmt --all --check

    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release --workspace (lib, bins, examples)"
cargo build --release --workspace --lib --bins --examples

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo bench --no-run --workspace"
cargo bench --no-run --workspace

echo "CI gate passed."

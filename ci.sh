#!/usr/bin/env bash
# Tier-1 verification for the SDM workspace. Run from anywhere; everything
# is relative to the repository root.
#
#   ./ci.sh          # full gate: fmt, clippy, analyze, build, test, bench compile
#   ./ci.sh quick    # skip fmt/clippy/analyze (what the paper-repro driver runs)
#   ./ci.sh bench    # run the criterion benches (quick shim), write
#                    # BENCH_hotpath.json via the exp_hotpath experiment and
#                    # enforce the numeric regression gate vs the committed
#                    # snapshot (exp_hotpath --check)
#   ./ci.sh analyze  # static-analysis lane: sdm-analyze lint driver over the
#                    # workspace, its fixture self-tests, and the
#                    # lock-discipline suite (debug + release profiles)
#   ./ci.sh miri     # opt-in: curated test subset under Miri (needs a
#                    # nightly toolchain with the miri component; skips with
#                    # a visible NOTICE otherwise)
#   ./ci.sh asan     # opt-in: curated test subset under AddressSanitizer
#                    # (needs a nightly toolchain; skips with a visible
#                    # NOTICE otherwise)

set -euo pipefail
cd "$(dirname "${BASH_SOURCE[0]}")"

mode="${1:-full}"

if [[ "$mode" == "analyze" ]]; then
    echo "==> sdm-analyze (workspace lint driver)"
    cargo run --locked --release -p sdm-analyze

    echo "==> sdm-analyze self-tests (unit + known-bad fixtures)"
    cargo test --locked -q -p sdm-analyze

    echo "==> lock-discipline suite (debug: detection; release: zero-cost layout)"
    cargo test --locked -q --test lock_discipline
    cargo test --locked -q --release --test lock_discipline

    echo "Analyze lane passed."
    exit 0
fi

if [[ "$mode" == "miri" ]]; then
    if ! cargo +nightly miri --version >/dev/null 2>&1; then
        echo "=============================================================="
        echo "NOTICE: miri lane SKIPPED — no nightly toolchain with the miri"
        echo "component is installed (cargo +nightly miri --version failed)."
        echo "Install with: rustup toolchain install nightly --component miri"
        echo "This is a skip, not a pass: nothing was checked."
        echo "=============================================================="
        exit 0
    fi
    echo "==> miri setup"
    cargo +nightly miri setup
    # Curated subset: the unsafe-adjacent and concurrency-heavy suites
    # (cache engine units incl. TrackedMutex, SlotPool property tests) —
    # small enough to finish under Miri's interpreter. Isolation is
    # disabled so proptest can read its persisted failure seeds.
    echo "==> curated test subset under Miri"
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test --locked -q -p sdm-cache --lib
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test --locked -q --test slot_pool
    echo "Miri lane passed."
    exit 0
fi

if [[ "$mode" == "asan" ]]; then
    # ASan needs -Zsanitizer (nightly-only) plus -Zbuild-std, which needs
    # the rust-src component in the nightly sysroot.
    if ! cargo +nightly --version >/dev/null 2>&1 \
        || [[ ! -d "$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library" ]]; then
        echo "=============================================================="
        echo "NOTICE: asan lane SKIPPED — needs a nightly toolchain with the"
        echo "rust-src component (-Zsanitizer + -Zbuild-std are nightly-only)."
        echo "Install with: rustup toolchain install nightly --component rust-src"
        echo "This is a skip, not a pass: nothing was checked."
        echo "=============================================================="
        exit 0
    fi
    echo "==> curated test subset under AddressSanitizer"
    RUSTFLAGS="-Zsanitizer=address" \
        cargo +nightly test --locked -q -Zbuild-std --target x86_64-unknown-linux-gnu \
        -p sdm-cache --lib
    RUSTFLAGS="-Zsanitizer=address" \
        cargo +nightly test --locked -q -Zbuild-std --target x86_64-unknown-linux-gnu \
        --test slot_pool --test kernel_equivalence
    echo "ASan lane passed."
    exit 0
fi

if [[ "$mode" == "bench" ]]; then
    echo "==> cargo bench --workspace (quick criterion shim)"
    cargo bench --locked --workspace

    echo "==> exp_hotpath --quick --check (writes BENCH_hotpath.json, gates vs committed snapshot)"
    cargo run --locked --release -p sdm-bench --bin exp_hotpath -- --quick --check

    echo "==> BENCH_hotpath.json sanity (tracked fields present)"
    for field in slice_ns_per_row run_batch_qps allocations_per_query \
                 kernel simd_available simd_speedup bit_identical \
                 int8_scalar_ns int4_scalar_ns fp32_scalar_ns \
                 qps_streams_1 qps_streams_4 scaling_efficiency_4 \
                 exact_qps relaxed_qps \
                 mean_queue_depth_exact mean_queue_depth_relaxed \
                 p99_latency_exact p99_latency_relaxed \
                 off_qps_2 on_qps_2 off_qps_4 on_qps_4 \
                 qps_gain_4 hit_rate_4 \
                 cross_shard_hit_rate_2 cross_shard_hit_rate_4 \
                 always_admit_qps_2 always_admit_qps_4 \
                 second_touch_qps_2 second_touch_qps_4 \
                 always_admit_hit_rate_4 second_touch_hit_rate_4 \
                 second_touch_denied_4 \
                 row_hit_ns shared_hit_ns pooled_hit_ns \
                 offered_qps_3 exact_p99_us_3 relaxed_p99_us_3 \
                 exact_shed_rate_1 relaxed_shed_rate_1 \
                 exact_served_qps_3 relaxed_served_qps_3 \
                 healthy_qps storm_qps storm_retention \
                 injected_corruptions detected_corruptions corrupted_served \
                 storm_degraded_rows outage_degraded_rows outage_failovers \
                 stuck_deadline_timeouts empty_plan_degraded_rows \
                 empty_plan_identical replay_identical; do
        grep -q "\"$field\"" BENCH_hotpath.json \
            || { echo "missing $field in BENCH_hotpath.json"; exit 1; }
    done

    echo "Bench gate passed; see BENCH_hotpath.json."
    exit 0
fi

if [[ "$mode" == "full" ]]; then
    echo "==> cargo fmt --all --check"
    cargo fmt --all --check

    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --locked --workspace --all-targets -- -D warnings

    echo "==> sdm-analyze (workspace lint driver; './ci.sh analyze' for the full lane)"
    cargo run --locked --release -p sdm-analyze
fi

echo "==> cargo build --release --workspace (lib, bins, examples)"
cargo build --locked --release --workspace --lib --bins --examples

echo "==> cargo test --workspace"
cargo test --locked -q --workspace

echo "==> cargo test fault_injection (randomized fault-plan invariants)"
cargo test --locked -q --test fault_injection

echo "==> kernel equivalence with the pooling kernel forced to scalar"
# The SIMD kernels' bit-identity contract is covered by the default run;
# this leg proves the SDM_POOL_KERNEL escape hatch works and that the
# whole hot path (auto_kernel dispatch included) serves on the scalar
# fallback — what a non-x86 or pre-SSE2 host would run.
SDM_POOL_KERNEL=scalar cargo test --locked -q --test kernel_equivalence --test zero_alloc

echo "==> cargo bench --no-run --workspace"
cargo bench --locked --no-run --workspace

echo "CI gate passed."

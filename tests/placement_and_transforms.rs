//! Integration tests: placement policies and load-time transformations
//! interact correctly across the embedding, cache, IO and core crates.

use dlrm::model_zoo;
use sdm_core::{LoadTransform, PlacementPolicy, SdmConfig, SdmSystem};
use sdm_metrics::units::Bytes;
use workload::{Query, QueryGenerator, WorkloadConfig};

fn queries(model: &dlrm::ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch,
        user_population: 300,
        ..WorkloadConfig::default()
    };
    QueryGenerator::new(&model.tables, cfg, seed)
        .unwrap()
        .generate(count)
}

#[test]
fn direct_dram_placement_reduces_sm_traffic() {
    let model = model_zoo::tiny(4, 1, 500);
    let stream = queries(&model, 40, 2);

    let mut sm_only = SdmSystem::build(&model, SdmConfig::for_tests(), 2).unwrap();
    let mut half_dram = SdmSystem::build(
        &model,
        SdmConfig::for_tests().with_placement(PlacementPolicy::FixedFmThenSm {
            dram_budget: model.user_capacity() / 2,
        }),
        2,
    )
    .unwrap();
    sm_only.run_queries(&stream).unwrap();
    half_dram.run_queries(&stream).unwrap();
    assert!(
        half_dram.manager().stats().sm_reads < sm_only.manager().stats().sm_reads,
        "direct placement did not reduce SM reads"
    );
    assert!(half_dram.manager().stats().fm_direct_lookups > 0);
}

#[test]
fn per_table_cache_enablement_disables_caching_for_cold_tables() {
    let mut model = model_zoo::tiny(2, 0, 500);
    model.tables[0].zipf_exponent = 0.05; // effectively uniform
    model.tables[1].zipf_exponent = 1.1;
    let stream = queries(&model, 60, 3);
    let mut system = SdmSystem::build(
        &model,
        SdmConfig::for_tests().with_placement(PlacementPolicy::PerTableCacheEnablement {
            min_zipf_exponent: 0.5,
        }),
        3,
    )
    .unwrap();
    system.run_queries(&stream).unwrap();
    // The cold table never populates the cache, so every one of its lookups
    // is an SM read; the hot table still caches.
    assert!(!system.manager().row_cache().table_enabled(0));
    assert!(system.manager().row_cache().table_enabled(1));
    assert!(system.manager().stats().row_cache_hits > 0);
}

#[test]
fn depruning_trades_fm_mapping_space_for_sm_capacity() {
    let mut model = model_zoo::tiny(2, 1, 600);
    for t in &mut model.tables {
        if t.kind == embedding::TableKind::User {
            t.pruned_fraction = 0.3;
        }
    }
    let stream = queries(&model, 30, 4);

    let mut mapped = SdmSystem::build(&model, SdmConfig::for_tests(), 4).unwrap();
    let mut depruned = SdmSystem::build(
        &model,
        SdmConfig::for_tests().with_transform(LoadTransform {
            deprune: true,
            dequantize: false,
        }),
        4,
    )
    .unwrap();

    assert!(mapped.manager().loaded().fm_mapping_bytes > Bytes::ZERO);
    assert_eq!(depruned.manager().loaded().fm_mapping_bytes, Bytes::ZERO);
    assert!(
        depruned.manager().loaded().sm_written_bytes > mapped.manager().loaded().sm_written_bytes
    );

    // Both serve the same queries; the de-pruned variant issues at least as
    // many SM-side requests (pruned rows now exist on SM), the mapped
    // variant resolves them as zero rows in fast memory.
    let mapped_scores = mapped.run_queries(&stream).unwrap();
    let depruned_scores = depruned.run_queries(&stream).unwrap();
    assert_eq!(mapped_scores.queries, depruned_scores.queries);
    assert!(mapped.manager().stats().pruned_zero_rows > 0);
    assert_eq!(depruned.manager().stats().pruned_zero_rows, 0);
    let mapped_requests =
        mapped.manager().stats().sm_reads + mapped.manager().stats().row_cache_hits;
    let depruned_requests =
        depruned.manager().stats().sm_reads + depruned.manager().stats().row_cache_hits;
    assert!(depruned_requests >= mapped_requests);
}

#[test]
fn dequantization_at_load_grows_the_sm_image_and_preserves_results() {
    let model = model_zoo::tiny(2, 1, 300);
    let stream = queries(&model, 10, 6);
    let mut int8 = SdmSystem::build(&model, SdmConfig::for_tests(), 6).unwrap();
    let mut fp32 = SdmSystem::build(
        &model,
        SdmConfig::for_tests().with_transform(LoadTransform {
            deprune: false,
            dequantize: true,
        }),
        6,
    )
    .unwrap();
    assert!(
        fp32.manager().loaded().sm_written_bytes > int8.manager().loaded().sm_written_bytes * 2
    );
    for q in &stream {
        let a = int8.run_query(q).unwrap();
        let b = fp32.run_query(q).unwrap();
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }
}

#[test]
fn pinned_tables_stay_in_fast_memory() {
    let model = model_zoo::tiny(3, 0, 400);
    let system = SdmSystem::build(
        &model,
        SdmConfig::for_tests().with_placement(PlacementPolicy::PinnedTables {
            pinned: vec![1],
            dram_budget: model.tables[1].capacity(),
        }),
        8,
    )
    .unwrap();
    use sdm_core::TableLocation;
    assert_eq!(
        system.manager().loaded().placement.location(1),
        TableLocation::FastMemory
    );
    assert_eq!(
        system.manager().loaded().placement.location(0),
        TableLocation::SlowMemoryCached
    );
}

//! Integration tests: workload statistics feed the cache correctly, and the
//! cluster arithmetic matches the paper's headline numbers.

use cluster::multi_tenancy::fleet_power_ratio;
use cluster::sizing::{size_ssds, SizingInputs};
use cluster::{ScenarioComparison, ServingScenario};
use dlrm::{analysis, model_zoo};
use sdm_core::{SdmConfig, SdmSystem};
use sdm_metrics::units::Watts;
use workload::{AccessTrace, QueryGenerator, RoutingPolicy, Scheduler, WorkloadConfig};

#[test]
fn skewed_tables_get_higher_cache_hit_rates() {
    let mut model = model_zoo::tiny(2, 0, 3_000);
    model.tables[0].zipf_exponent = 0.05;
    model.tables[1].zipf_exponent = 1.1;
    let cfg = WorkloadConfig {
        item_batch: 1,
        user_population: 5_000,
        user_zipf_exponent: 0.3,
        inference_eval: false,
    };
    let queries = QueryGenerator::new(&model.tables, cfg, 5)
        .unwrap()
        .generate(400);
    let mut system = SdmSystem::build(&model, SdmConfig::for_tests(), 5).unwrap();
    system.run_queries(&queries).unwrap();

    // Reconstruct per-table hit behaviour from the trace: the skewed table
    // re-references rows far more often, so the overall hit rate must be
    // dominated by it.
    let trace = AccessTrace::from_queries(&queries);
    let unique = |t: u32| {
        let a = trace.table_accesses(t);
        let u: std::collections::HashSet<u64> = a.iter().copied().collect();
        u.len() as f64 / a.len() as f64
    };
    assert!(
        unique(1) < unique(0),
        "skewed table should re-reference more"
    );
    assert!(system.manager().stats().row_cache_hit_rate() > 0.1);
}

#[test]
fn sticky_routing_gives_each_host_a_repeating_user_population() {
    let model = model_zoo::tiny(2, 1, 2_000);
    let cfg = WorkloadConfig {
        item_batch: 4,
        user_population: 400,
        user_zipf_exponent: 0.9,
        inference_eval: false,
    };
    let queries = QueryGenerator::new(&model.tables, cfg, 6)
        .unwrap()
        .generate(600);
    let mut sticky = Scheduler::new(8, RoutingPolicy::UserSticky);
    let parts = sticky.partition(&queries);
    // Every user's queries land on exactly one host.
    let mut seen: std::collections::HashMap<u64, usize> = Default::default();
    for (host, part) in parts.iter().enumerate() {
        for q in part {
            if let Some(&h) = seen.get(&q.user_id) {
                assert_eq!(h, host);
            }
            seen.insert(q.user_id, host);
        }
    }
    // And the per-host traces cover all lookups.
    let total: u64 = queries.iter().map(|q| q.total_lookups() as u64).sum();
    let mut sched = Scheduler::new(8, RoutingPolicy::UserSticky);
    let sum: u64 = sched
        .per_host_traces(&queries)
        .iter()
        .map(|t| t.len())
        .sum();
    assert_eq!(total, sum);
}

#[test]
fn paper_headline_numbers_from_cluster_arithmetic() {
    // Table 8: 20% saving.
    let t8 = ScenarioComparison {
        total_qps: 240.0 * 1200.0,
        scenarios: vec![
            ServingScenario::new("HW-L", 240.0, Watts(1.0)),
            ServingScenario::new("HW-SS + SDM", 120.0, Watts(0.4)),
        ],
    };
    assert!((t8.power_saving(1).unwrap() - 0.20).abs() < 1e-9);

    // Table 9: ~5% saving for Optane SDM over scale-out.
    let t9 = ScenarioComparison {
        total_qps: 450.0 * 1500.0,
        scenarios: vec![
            ServingScenario::new("HW-AN + ScaleOut", 450.0, Watts(1.05)).with_auxiliary_hosts(0.2),
            ServingScenario::new("HW-AO + SDM", 450.0, Watts(1.0)),
        ],
    };
    let saving = t9.power_saving(1).unwrap();
    assert!((0.03..0.08).contains(&saving));

    // Table 10: 9-10 Optane SSDs for M3.
    let sizing = size_ssds(SizingInputs {
        qps: 3150.0,
        user_tables: 2000,
        avg_pooling_factor: 30.0,
        cache_hit_rate: 0.8,
        iops_per_ssd: 4.0e6,
    })
    .unwrap();
    assert!(sizing.ssds_needed >= 9 && sizing.ssds_needed <= 10);

    // Table 11: ~29% fleet power saving from multi-tenancy.
    let ratio = fleet_power_ratio(0.63, 1.0, 0.90, 1.01).unwrap();
    assert!((1.0 - ratio - 0.29).abs() < 0.02);
}

#[test]
fn equation_8_iops_matches_direct_counting() {
    let model = model_zoo::tiny(3, 1, 1_000);
    let cfg = WorkloadConfig {
        item_batch: model.item_batch,
        user_population: 100,
        ..WorkloadConfig::default()
    };
    let queries = QueryGenerator::new(&model.tables, cfg, 8)
        .unwrap()
        .generate(50);
    let user_ids: std::collections::HashSet<u32> =
        model.user_tables().iter().map(|t| t.id).collect();
    let counted: u64 = queries
        .iter()
        .flat_map(|q| q.user_requests.iter())
        .filter(|r| user_ids.contains(&r.table))
        .map(|r| r.indices.len() as u64)
        .sum();
    let predicted =
        analysis::iops_requirement(model.user_tables().iter().copied(), 50.0, model.item_batch);
    // The workload uses per-table pooling factors exactly, so counting over
    // 50 queries equals the Equation-8 prediction for 50 QPS over 1 second.
    assert_eq!(counted as f64, predicted);
}

//! Relaxed (overlapped) batch execution contracts — paper §3.2.
//!
//! Three pinned-down guarantees:
//!
//! 1. **Window-1 bit-identity** — `BatchMode::Relaxed { max_inflight_queries: 1 }`
//!    begins every query at the instant the previous one finished, which is
//!    exactly the exact-mode schedule: scores, latency breakdowns, clocks,
//!    cache counters and IO totals are bit-for-bit equal across M1–M3 at
//!    batch sizes 1/8/33.
//! 2. **Reassociation-tight scores at deeper windows** — with more queries
//!    in flight the IO completion order (and the pooled-cache insert
//!    timing) changes, so per-element summation order may differ, but every
//!    per-query score stays within a tight f32-reassociation tolerance of
//!    the exact result.
//! 3. **Counter conservation** — every row access is either a cache hit or
//!    an SM read, and every SM read is one submitted IO: with the pooled
//!    cache disabled, `row_cache_hits + sm_reads + pruned_zero_rows` and
//!    `sm_reads == submitted` are invariant across modes and windows.
//!
//! Plus the throughput side: on a cold M1-scaled stream the relaxed mode
//! must deliver a shorter virtual makespan (higher `batch_qps`) and a
//! strictly deeper mean device-queue depth than exact mode.

use dlrm::model_zoo;
use sdm_core::{BatchMode, SdmConfig, SdmSystem, ServingHost};
use sdm_metrics::units::Bytes;
use workload::{Query, QueryGenerator, RoutingPolicy, WorkloadConfig};

const BATCH_SIZES: &[usize] = &[1, 8, 33];

fn queries_for(model: &dlrm::ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch.min(8),
        user_population: 400,
        ..WorkloadConfig::default()
    };
    QueryGenerator::new(&model.tables, cfg, seed)
        .unwrap()
        .generate(count)
}

fn scaled_config() -> SdmConfig {
    SdmConfig {
        device_capacity: Bytes::from_mib(64),
        cache: sdm_cache::CacheConfig::with_total_budget(Bytes::from_mib(4)),
        ..SdmConfig::for_tests()
    }
}

/// Runs the same stream through exact mode and `Relaxed { 1 }` on two
/// identically built systems and asserts bit-identical behaviour, warm
/// state included (batch sizes consume successive chunks of one stream).
fn assert_window1_identical(model: &dlrm::ModelConfig, config: SdmConfig, seed: u64) {
    let total: usize = BATCH_SIZES.iter().sum();
    let queries = queries_for(model, total, seed);
    let mut exact = SdmSystem::build(model, config.clone(), seed).unwrap();
    let relaxed_cfg = config.with_relaxed_batching(1);
    let mut relaxed = SdmSystem::build(model, relaxed_cfg, seed).unwrap();
    let mut at = 0usize;
    for &batch in BATCH_SIZES {
        let stream = &queries[at..at + batch];
        at += batch;

        let er = exact.run_batch(stream).unwrap();
        let rr = relaxed.run_batch(stream).unwrap();

        assert_eq!(exact.batch_len(), relaxed.batch_len());
        for i in 0..exact.batch_len() {
            assert_eq!(
                exact.batch_scores(i),
                relaxed.batch_scores(i),
                "{}: scores diverge at query {i} (batch {batch})",
                model.name
            );
            assert_eq!(
                exact.batch_latency(i),
                relaxed.batch_latency(i),
                "{}: latency diverges at query {i} (batch {batch})",
                model.name
            );
        }
        assert_eq!(exact.now(), relaxed.now(), "{}: clocks diverge", model.name);
        assert_eq!(er.makespan, rr.makespan);
        assert_eq!(er.queries, rr.queries);

        // Cache and IO counters identical.
        let a = exact.manager().stats();
        let b = relaxed.manager().stats();
        assert_eq!(a.pooled_ops, b.pooled_ops);
        assert_eq!(a.pooled_cache_hits, b.pooled_cache_hits);
        assert_eq!(a.row_cache_hits, b.row_cache_hits);
        assert_eq!(a.sm_reads, b.sm_reads);
        assert_eq!(a.fm_direct_lookups, b.fm_direct_lookups);
        assert_eq!(a.pruned_zero_rows, b.pruned_zero_rows);
        assert_eq!(a.sm_bytes_read, b.sm_bytes_read);
        assert_eq!(a.sm_bus_bytes, b.sm_bus_bytes);
        assert_eq!(a.io_time, b.io_time);
        assert_eq!(a.pooling_time, b.pooling_time);

        let ia = exact.manager().io_engine().stats();
        let ib = relaxed.manager().io_engine().stats();
        assert_eq!(ia.submitted, ib.submitted);
        assert_eq!(ia.queue_delay, ib.queue_delay);
        assert_eq!(ia.device_time, ib.device_time);
        assert_eq!(ia.queue_depth.depth_samples, ib.queue_depth.depth_samples);
        assert_eq!(ia.queue_depth.depth_sum, ib.queue_depth.depth_sum);
        assert_eq!(ia.queue_depth.max_depth, ib.queue_depth.max_depth);

        // Row-cache contents converged identically.
        use sdm_cache::RowCache;
        assert_eq!(
            exact.manager().row_cache().len(),
            relaxed.manager().row_cache().len()
        );
        assert_eq!(
            exact.manager().row_cache().memory_used(),
            relaxed.manager().row_cache().memory_used()
        );
    }
}

#[test]
fn window1_is_bit_identical_tiny() {
    assert_window1_identical(&model_zoo::tiny(3, 2, 500), SdmConfig::for_tests(), 11);
    let mut pruned = model_zoo::tiny(2, 1, 400);
    pruned.tables[0].pruned_fraction = 0.4;
    assert_window1_identical(&pruned, SdmConfig::for_tests(), 13);
}

#[test]
fn window1_is_bit_identical_m1() {
    let model = model_zoo::scaled_model(&model_zoo::m1(), 400_000, 60.0);
    assert_window1_identical(&model, scaled_config(), 21);
}

#[test]
fn window1_is_bit_identical_m2() {
    let model = model_zoo::scaled_model(&model_zoo::m2(), 400_000, 60.0);
    assert_window1_identical(&model, scaled_config(), 22);
}

#[test]
fn window1_is_bit_identical_m3() {
    // Same M3 subset rationale as the batch_equivalence suite: equivalence
    // is decided per embedding operator.
    let mut model = model_zoo::scaled_model(&model_zoo::m3(), 4_000_000, 300.0);
    let user: Vec<_> = model
        .tables
        .iter()
        .filter(|t| t.kind == embedding::TableKind::User)
        .take(60)
        .cloned()
        .collect();
    let item: Vec<_> = model
        .tables
        .iter()
        .filter(|t| t.kind == embedding::TableKind::Item)
        .take(30)
        .cloned()
        .collect();
    model.tables = user.into_iter().chain(item).collect();
    assert_window1_identical(&model, scaled_config(), 23);
}

/// Asserts two score slices agree within the f32 reassociation tolerance
/// used by the sharded-equivalence suite.
fn assert_scores_close(want: &[f32], got: &[f32], context: &str) {
    assert_eq!(want.len(), got.len(), "{context}: score widths diverge");
    for (i, (&a, &b)) in want.iter().zip(got).enumerate() {
        let tol = 1e-4 * a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "{context}: score {i} diverges beyond reassociation tolerance: {a} vs {b}"
        );
    }
}

#[test]
fn deeper_windows_stay_reassociation_tight() {
    let model = model_zoo::scaled_model(&model_zoo::m1(), 400_000, 60.0);
    let queries = queries_for(&model, 42, 31);
    let mut exact = SdmSystem::build(&model, scaled_config(), 31).unwrap();
    exact.run_batch(&queries).unwrap();
    for window in [2usize, 4, 8] {
        let cfg = scaled_config().with_relaxed_batching(window);
        let mut relaxed = SdmSystem::build(&model, cfg, 31).unwrap();
        relaxed.run_batch(&queries).unwrap();
        assert_eq!(exact.batch_len(), relaxed.batch_len());
        for i in 0..exact.batch_len() {
            assert_scores_close(
                exact.batch_scores(i),
                relaxed.batch_scores(i),
                &format!("window {window}, query {i}"),
            );
        }
    }
}

#[test]
fn counters_are_conserved_across_modes() {
    // Pooled cache off: its deferred insert legitimately shifts the
    // hit/miss *split* at deep windows, but with rows resolved only through
    // the row cache the conservation law is exact (see module docs).
    let mut config = scaled_config();
    config.cache.pooled_cache_budget = Bytes::ZERO;
    let model = model_zoo::scaled_model(&model_zoo::m1(), 400_000, 60.0);
    let queries = queries_for(&model, 40, 41);

    let mut accesses: Vec<u64> = Vec::new();
    for mode in [
        BatchMode::Exact,
        BatchMode::Relaxed {
            max_inflight_queries: 1,
        },
        BatchMode::Relaxed {
            max_inflight_queries: 4,
        },
        BatchMode::Relaxed {
            max_inflight_queries: 8,
        },
    ] {
        let cfg = config.clone().with_batch_mode(mode);
        let mut system = SdmSystem::build(&model, cfg, 41).unwrap();
        system.run_batch(&queries).unwrap();
        let stats = system.manager().stats();
        let io = system.manager().io_engine().stats();
        // Every SM read is exactly one submitted IO (minus the loader's
        // image writes, which go through the device array, not the engine).
        assert_eq!(
            stats.sm_reads, io.submitted,
            "{mode:?}: sm_reads != submitted IOs"
        );
        accesses.push(stats.row_cache_hits + stats.sm_reads + stats.pruned_zero_rows);
    }
    for w in accesses.windows(2) {
        assert_eq!(
            w[0], w[1],
            "hit+miss+pruned totals must be mode-invariant: {accesses:?}"
        );
    }
}

#[test]
fn relaxed_mode_overlaps_io_and_deepens_queues() {
    // Cold M1 stream: the relaxed pipeline must shorten the virtual
    // makespan and drive the device queues strictly deeper, at equal or
    // higher p99 per-query latency (the documented trade-off).
    let model = model_zoo::scaled_model(&model_zoo::m1(), 400_000, 60.0);
    let queries = queries_for(&model, 64, 51);

    let mut exact = SdmSystem::build(&model, scaled_config(), 51).unwrap();
    let er = exact.run_batch(&queries).unwrap();
    let exact_depth = exact.manager().io_engine().stats().queue_depth.clone();

    let cfg = scaled_config().with_relaxed_batching(8);
    let mut relaxed = SdmSystem::build(&model, cfg, 51).unwrap();
    let rr = relaxed.run_batch(&queries).unwrap();
    let relaxed_depth = relaxed.manager().io_engine().stats().queue_depth.clone();

    assert!(
        rr.makespan < er.makespan,
        "relaxed makespan {} not shorter than exact {}",
        rr.makespan,
        er.makespan
    );
    assert!(rr.batch_qps > er.batch_qps);
    assert!(
        relaxed_depth.mean_depth() > exact_depth.mean_depth(),
        "relaxed mean queue depth {:.2} not deeper than exact {:.2}",
        relaxed_depth.mean_depth(),
        exact_depth.mean_depth()
    );
    assert!(
        rr.p99_latency >= er.p99_latency,
        "deeper queues cannot lower tail latency"
    );
}

#[test]
fn serving_host_runs_relaxed_shards() {
    // The mode plumbs through ServingHost via the divided config: a
    // relaxed host produces reassociation-tight scores vs an exact host at
    // every shard count, and reports deeper aggregate queue occupancy.
    let model = model_zoo::tiny(2, 1, 400);
    let queries = queries_for(&model, 24, 61);
    for shards in [1usize, 2, 4] {
        let mut exact = ServingHost::build(
            &model,
            &SdmConfig::for_tests(),
            61,
            shards,
            RoutingPolicy::UserSticky,
        )
        .unwrap();
        let relaxed_cfg = SdmConfig::for_tests().with_relaxed_batching(4);
        let mut relaxed =
            ServingHost::build(&model, &relaxed_cfg, 61, shards, RoutingPolicy::UserSticky)
                .unwrap();
        exact.run_batch(&queries).unwrap();
        relaxed.run_batch(&queries).unwrap();
        assert_eq!(exact.len(), relaxed.len());
        for i in 0..exact.len() {
            assert_scores_close(
                exact.scores(i),
                relaxed.scores(i),
                &format!("{shards} shard(s), query {i}"),
            );
        }
        assert!(
            relaxed.queue_depth().mean_depth() >= exact.queue_depth().mean_depth(),
            "{shards} shard(s): relaxed host queues not deeper"
        );
        assert_eq!(relaxed.shard(0).batch_mode(), relaxed_cfg.batch_mode);
    }
}

//! Known-bad fixture: console output from library code. Must trip
//! `no-print-in-libs` three times (println!, eprintln!, dbg!).

pub fn serve(queries: usize) -> usize {
    println!("serving {queries} queries");
    if queries == 0 {
        eprintln!("empty batch");
    }
    dbg!(queries)
}

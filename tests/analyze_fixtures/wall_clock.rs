//! Known-bad fixture: wall-clock time sources inside a virtual-clock
//! crate. Must trip `no-wall-clock` twice — once per time source.

use std::time::{Instant, SystemTime};

pub fn elapsed_wall_nanos() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

pub fn unix_seconds() -> u64 {
    match SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

//! Clean fixture: every would-be violation carries a justified
//! suppression, so the scanner must report nothing. Guards the
//! suppression syntax itself against regressions.

pub fn startup_config(raw: &str) -> u32 {
    // Startup-only path: a malformed baked-in default is a build bug, and
    // aborting with the parse message is the correct behaviour.
    // sdm-analyze: allow(no-unwrap-outside-tests)
    raw.parse().unwrap()
}

pub fn log_banner() {
    // One-shot startup banner, written before logging is initialised.
    println!("booting"); // sdm-analyze: allow(no-print-in-libs)
}

//! Known-bad fixture: library code panicking through `unwrap`/`expect`
//! instead of returning a typed error. Must trip `no-unwrap-outside-tests`
//! twice (once per call) — and must NOT trip for the test module below.

pub fn lookup(map: &std::collections::BTreeMap<u32, u32>, key: u32) -> u32 {
    let direct = map.get(&key).unwrap();
    let doubled = map.get(&(key * 2)).expect("missing doubled key");
    direct + doubled
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}

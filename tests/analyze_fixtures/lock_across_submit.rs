//! Known-bad fixture: an IO submission issued while a lock guard is live —
//! exactly the "stripe lock held across SM submit" contract violation.
//! Must trip `lock-across-await-style`; the clean variant below (submit
//! after the guard's scope closes) must NOT trip.

use std::sync::Mutex;

pub struct Tier {
    stripe: Mutex<Vec<u8>>,
}

pub struct Engine;

impl Engine {
    pub fn submit(&self, _req: u64) {}
}

pub fn held_across_submit(tier: &Tier, engine: &Engine) {
    let guard = tier.stripe.lock();
    engine.submit(42);
    drop(guard);
}

pub fn clean_submit(tier: &Tier, engine: &Engine) {
    {
        let guard = tier.stripe.lock();
        let _len = guard.iter().count();
    }
    engine.submit(42);
}

//! Known-bad fixture: `unsafe` without a written justification. Must trip
//! `unsafe-needs-safety-comment` for the bare block and the bare fn — and
//! must NOT trip for the properly annotated pair below.

pub fn read_first(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    unsafe { *bytes.as_ptr() }
}

pub unsafe fn unchecked_add(a: *const u8, off: usize) -> *const u8 {
    a.add(off)
}

pub fn annotated(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees at least one readable byte.
    unsafe { *bytes.as_ptr() }
}

/// # Safety
///
/// `a` must point at least `off + 1` bytes into a live allocation.
pub unsafe fn documented_add(a: *const u8, off: usize) -> *const u8 {
    a.add(off)
}

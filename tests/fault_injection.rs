//! Deterministic fault-injection properties over random [`FaultPlan`]s.
//!
//! Every case pins its RNG seed (suite-level proptest seed + per-device
//! fault seeds derived from the case's generated seed), so a failing case
//! index reproduces bit-exactly. The properties are the resilience
//! contract of the serving path:
//!
//! * **Conservation** — every embedding-row lookup is accounted for
//!   exactly once: the sum of `fm_direct_lookups`, `row_cache_hits`,
//!   `shared_tier_hits`, `sm_reads`, `pruned_zero_rows` and
//!   `degraded_rows` equals the number of lookups the query stream asked
//!   for, no matter what faults were injected. Faults may move a lookup
//!   between buckets (a read that exhausts retries degrades instead of
//!   hitting the cache next round); they may never lose or double-count
//!   one.
//! * **End-to-end detection** — the per-row checksum catches *every*
//!   injected bit flip (the retry policy keeps the IO deadline disabled
//!   here, so no corrupted attempt is abandoned before verification).
//! * **Inertness** — an attached but all-zero-rate plan is bit-identical
//!   to no plan at all: same scores, same counters, zero degraded rows.
//! * **Replay** — the same fault seed replays bit-identically: same
//!   scores, same injected and handled fault ledgers.

use dlrm::model_zoo;
use io_engine::ResilienceStats;
use proptest::prelude::*;
use scm_device::{DeviceId, FaultPlan, FaultStats};
use sdm_core::{SdmConfig, SdmStats, SdmSystem};
use sdm_metrics::units::Bytes;
use sdm_metrics::{SimDuration, SimInstant};
use workload::{Query, QueryGenerator, WorkloadConfig};

fn queries_for(model: &dlrm::ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch,
        // Small population so later rounds re-hit warmed rows and the
        // conservation sum exercises cache hits, not just SM reads.
        user_population: 8,
        ..WorkloadConfig::default()
    };
    QueryGenerator::new(&model.tables, cfg, seed)
        .unwrap()
        .generate(count)
}

/// Row lookups the stream requests per pass (the conservation target).
fn total_lookups(queries: &[Query]) -> u64 {
    queries
        .iter()
        .map(|q| {
            q.user_requests
                .iter()
                .chain(&q.item_requests)
                .map(|r| r.lookups() as u64)
                .sum::<u64>()
        })
        .sum()
}

/// Pooled-operator caching off: a pooled-cache hit skips its row lookups
/// entirely, which would make the conservation target stream-dependent.
fn fault_config() -> SdmConfig {
    let mut config = SdmConfig::for_tests();
    config.cache.pooled_cache_budget = Bytes::ZERO;
    config
}

/// Attaches `plan_for(device_index)` to every SM device of the system.
fn attach_plans(system: &mut SdmSystem, mut plan_for: impl FnMut(usize) -> Option<FaultPlan>) {
    let array = system.manager_mut().io_engine_mut().array_mut();
    for d in 0..array.len() {
        let plan = plan_for(d);
        array
            .device_mut(DeviceId(d))
            .expect("device index in range")
            .set_fault_plan(plan);
    }
}

/// Sum of the fault ledgers of every attached plan.
fn injected(system: &SdmSystem) -> FaultStats {
    let mut total = FaultStats::default();
    for (_, device) in system.manager().io_engine().array().iter() {
        if let Some(plan) = device.fault_plan() {
            total.merge(plan.stats());
        }
    }
    total
}

/// Serves `rounds` passes of the stream, returning the score fingerprint
/// of the final pass plus the cumulative serving and IO-resilience
/// statistics (the engine owns the retry/checksum/hedge ledger; a
/// multi-shard host folds it into `SdmStats`, a bare system reports it
/// from the engine directly).
fn serve(
    system: &mut SdmSystem,
    queries: &[Query],
    rounds: usize,
) -> (Vec<f32>, SdmStats, ResilienceStats) {
    let mut scores = Vec::new();
    for _ in 0..rounds {
        scores.clear();
        for q in queries {
            let result = system
                .run_query(q)
                .expect("injected faults never fail a query");
            scores.extend_from_slice(&result.scores);
        }
    }
    let stats = system.manager().stats().clone();
    let resilience = system.manager().io_engine().stats().resilience;
    (scores, stats, resilience)
}

/// The conservation sum: every resolved row lookup lands in exactly one
/// of these buckets.
fn accounted_lookups(stats: &SdmStats) -> u64 {
    stats.fm_direct_lookups
        + stats.row_cache_hits
        + stats.shared_tier_hits
        + stats.sm_reads
        + stats.pruned_zero_rows
        + stats.degraded_rows
}

/// The counters replay must reproduce bit-exactly.
fn resilience_fingerprint(stats: &SdmStats, io: &ResilienceStats) -> [u64; 9] {
    [
        stats.sm_reads,
        stats.row_cache_hits,
        stats.pruned_zero_rows,
        stats.degraded_rows,
        io.retries,
        io.transient_errors,
        io.checksum_failures,
        io.deadline_timeouts,
        io.hedges,
    ]
}

/// Per-device fault seed derived from the case's generated seed, so
/// device RNG streams are decorrelated but pure functions of the case.
fn device_seed(fault_seed: u64, device: usize) -> u64 {
    fault_seed ^ (device as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

proptest! {
    // Pinned case count and seed: CI runs are deterministic and a failure
    // report's case index reproduces exactly.
    #![proptest_config(ProptestConfig::with_cases(12).with_seed(0x5d11_0007))]

    #[test]
    fn random_fault_plans_uphold_the_resilience_contract(
        transient in 0.0f64..0.25,
        corruption in 0.0f64..0.12,
        stuck in 0.0f64..0.08,
        storm_mult in 1.0f64..6.0,
        fault_seed in 0u64..u64::MAX,
        query_seed in 1u64..10_000,
    ) {
        let model = model_zoo::tiny(3, 2, 400);
        let queries = queries_for(&model, 18, query_seed);
        let rounds = 2usize;
        let expected = total_lookups(&queries) * rounds as u64;
        let storm_end = SimInstant::EPOCH + SimDuration::from_secs(3600);
        let stuck_latency = SimDuration::from_micros(200);

        // Baseline: no plans attached.
        let mut baseline = SdmSystem::build(&model, fault_config(), 11).unwrap();
        let (base_scores, base_stats, base_io) = serve(&mut baseline, &queries, rounds);
        prop_assert_eq!(accounted_lookups(&base_stats), expected);
        prop_assert_eq!(base_stats.degraded_rows, 0);
        prop_assert_eq!(base_io.checksum_failures, 0);

        // Attached but all-zero-rate plan: bit-identical to no plan.
        let mut inert = SdmSystem::build(&model, fault_config(), 11).unwrap();
        attach_plans(&mut inert, |d| Some(FaultPlan::new(device_seed(fault_seed, d))));
        let (inert_scores, inert_stats, inert_io) = serve(&mut inert, &queries, rounds);
        prop_assert_eq!(&inert_scores, &base_scores);
        prop_assert_eq!(accounted_lookups(&inert_stats), expected);
        prop_assert_eq!(inert_stats.degraded_rows, 0);
        prop_assert_eq!(
            resilience_fingerprint(&inert_stats, &inert_io),
            resilience_fingerprint(&base_stats, &base_io)
        );
        prop_assert_eq!(injected(&inert).total(), 0);

        // Random faulty plan on every device. The default retry policy
        // keeps the IO deadline disabled, so every corrupted attempt
        // reaches checksum verification.
        let plan_for = |d: usize| {
            Some(
                FaultPlan::new(device_seed(fault_seed, d))
                    .with_transient_errors(transient)
                    .with_corruption(corruption)
                    .with_stuck(stuck, stuck_latency)
                    .with_storm(SimInstant::EPOCH, storm_end, storm_mult),
            )
        };
        let mut faulty = SdmSystem::build(&model, fault_config(), 11).unwrap();
        attach_plans(&mut faulty, plan_for);
        let (faulty_scores, faulty_stats, faulty_io) = serve(&mut faulty, &queries, rounds);
        let faulty_injected = injected(&faulty);

        // Conservation: faults moved lookups between buckets, never lost
        // or double-counted one.
        prop_assert_eq!(accounted_lookups(&faulty_stats), expected);

        // End-to-end detection: the checksum caught every injected flip.
        prop_assert_eq!(faulty_io.checksum_failures, faulty_injected.corruptions);
        // Every injected transient error was observed by the retry layer.
        prop_assert_eq!(faulty_io.transient_errors, faulty_injected.transient_errors);
        // Recovery is value-exact: unless a row actually degraded to
        // zeros, retried/re-read payloads reproduce the fault-free scores
        // bit-identically (storms and stuck IOs only cost time).
        if faulty_stats.degraded_rows == 0 {
            prop_assert_eq!(&faulty_scores, &base_scores);
        }

        // Replay: the same fault seed reproduces the run bit-exactly.
        let mut replay = SdmSystem::build(&model, fault_config(), 11).unwrap();
        attach_plans(&mut replay, plan_for);
        let (replay_scores, replay_stats, replay_io) = serve(&mut replay, &queries, rounds);
        prop_assert_eq!(&replay_scores, &faulty_scores);
        prop_assert_eq!(
            resilience_fingerprint(&replay_stats, &replay_io),
            resilience_fingerprint(&faulty_stats, &faulty_io)
        );
        let replay_injected = injected(&replay);
        prop_assert_eq!(replay_injected.transient_errors, faulty_injected.transient_errors);
        prop_assert_eq!(replay_injected.corruptions, faulty_injected.corruptions);
        prop_assert_eq!(replay_injected.stuck, faulty_injected.stuck);
        prop_assert_eq!(replay_injected.storm_reads, faulty_injected.storm_reads);
    }
}

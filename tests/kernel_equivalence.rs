//! Bit-for-bit equivalence of the SIMD pooling kernels against scalar.
//!
//! The contract in `embedding::kernels` is that every kernel — scalar,
//! SSE2, AVX2 — produces *identical bit patterns*, not merely close
//! floats: same `code as f32 * scale + bias` dequantise expression, a
//! separate packed multiply and packed add (never FMA), lane-for-lane
//! order, and scalar tails that reuse the same expression. This suite
//! pins that contract with seeded property tests across quantisation
//! schemes, dimensions (including zero, odd tails, and the int4 padding
//! nibble), deliberately unaligned row buffers, weighted and unweighted
//! pooling, and non-finite scale/bias/weight values.
//!
//! The `SDM_POOL_KERNEL` environment knob is exercised by a dedicated CI
//! leg that re-runs this suite with the kernel forced to `scalar`; the
//! tests pass trivially there (scalar vs scalar), which is exactly the
//! point — the suite itself never depends on what the host supports.

use embedding::kernels::{accumulate_row_weighted_with, accumulate_row_with, SelectedKernel};
use embedding::{quantize_row, PoolKernel, QuantScheme};
use proptest::prelude::*;

/// Every kernel this host can run, scalar always included first.
fn supported_kernels() -> Vec<SelectedKernel> {
    [PoolKernel::Scalar, PoolKernel::Sse2, PoolKernel::Avx2]
        .into_iter()
        .filter(|k| k.is_supported())
        .map(PoolKernel::resolve)
        .collect()
}

fn scheme_for(pick: u8) -> QuantScheme {
    match pick % 3 {
        0 => QuantScheme::Int8,
        1 => QuantScheme::Int4,
        _ => QuantScheme::Fp32,
    }
}

/// Runs one kernel over `row` re-buffered at byte `offset` (so vector
/// loads see every alignment class) and returns the accumulator's bit
/// patterns. `init` seeds the accumulator so the *add into out* step is
/// exercised against non-zero state, not just the dequantise.
fn pooled_bits(
    kernel: SelectedKernel,
    row: &[u8],
    offset: usize,
    scheme: QuantScheme,
    weight: Option<f32>,
    dim: usize,
    init: f32,
) -> Vec<u32> {
    let mut buf = vec![0u8; offset + row.len()];
    buf[offset..].copy_from_slice(row);
    let mut out = vec![init; dim];
    match weight {
        Some(w) => accumulate_row_weighted_with(kernel, &buf[offset..], scheme, w, &mut out),
        None => accumulate_row_with(kernel, &buf[offset..], scheme, &mut out),
    }
    .unwrap_or_else(|e| panic!("kernel {kernel} rejected a well-formed row: {e}"));
    out.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    // Pinned case count and seed: failures name the case index and
    // reproduce exactly (same convention as tests/properties.rs).
    #![proptest_config(ProptestConfig::with_cases(96).with_seed(0x5d11_0008))]

    /// Unweighted pooling: every supported kernel matches scalar
    /// bit-for-bit at every buffer alignment.
    #[test]
    fn simd_pooling_is_bit_identical_to_scalar(
        values in prop::collection::vec(-8.0f32..8.0, 0..131),
        scheme_pick in 0u8..3,
        offset in 0usize..4,
        init in -4.0f32..4.0,
    ) {
        let scheme = scheme_for(scheme_pick);
        let dim = values.len();
        let row = quantize_row(&values, scheme);
        let reference = pooled_bits(SelectedKernel::SCALAR, &row, 0, scheme, None, dim, init);
        for kernel in supported_kernels() {
            let got = pooled_bits(kernel, &row, offset, scheme, None, dim, init);
            prop_assert_eq!(
                &got, &reference,
                "kernel {} diverged from scalar ({:?}, dim {}, offset {})",
                kernel, scheme, dim, offset
            );
        }
    }

    /// Weighted pooling: the extra per-lane multiply must round in the
    /// same place in every kernel, including weight zero and negatives.
    #[test]
    fn weighted_simd_pooling_is_bit_identical_to_scalar(
        values in prop::collection::vec(-8.0f32..8.0, 1..131),
        scheme_pick in 0u8..3,
        offset in 0usize..4,
        weight_pick in 0usize..6,
        init in -4.0f32..4.0,
    ) {
        let scheme = scheme_for(scheme_pick);
        let dim = values.len();
        let weight = [0.0f32, 1.0, -1.0, 0.333, -2.5, 1e20][weight_pick];
        let row = quantize_row(&values, scheme);
        let reference =
            pooled_bits(SelectedKernel::SCALAR, &row, 0, scheme, Some(weight), dim, init);
        for kernel in supported_kernels() {
            let got = pooled_bits(kernel, &row, offset, scheme, Some(weight), dim, init);
            prop_assert_eq!(
                &got, &reference,
                "weighted kernel {} diverged from scalar ({:?}, dim {}, weight {})",
                kernel, scheme, dim, weight
            );
        }
    }
}

/// Builds a raw int8 row (codes then little-endian f32 scale and bias)
/// without going through `quantize_row`, so non-finite parameters can be
/// injected directly.
fn raw_int8_row(codes: &[u8], scale: f32, bias: f32) -> Vec<u8> {
    let mut row = codes.to_vec();
    row.extend_from_slice(&scale.to_le_bytes());
    row.extend_from_slice(&bias.to_le_bytes());
    row
}

/// Same for int4: `packed` holds two codes per byte, low nibble first.
fn raw_int4_row(packed: &[u8], scale: f32, bias: f32) -> Vec<u8> {
    let mut row = packed.to_vec();
    row.extend_from_slice(&scale.to_le_bytes());
    row.extend_from_slice(&bias.to_le_bytes());
    row
}

/// Non-finite scale/bias must propagate identically through every
/// kernel: NaN and infinity arithmetic is lane-local in both the scalar
/// and the packed paths, so the bit patterns have to agree.
#[test]
fn non_finite_scale_and_bias_propagate_identically() {
    let codes: Vec<u8> = (0u8..23).map(|i| i.wrapping_mul(37)).collect();
    let dim = codes.len();
    let cases = [
        (f32::NAN, 0.5),
        (0.25, f32::NAN),
        (f32::INFINITY, -1.0),
        // code 0 * inf -> NaN in some lanes, inf in others: a good mix.
        (f32::NEG_INFINITY, f32::INFINITY),
    ];
    for (scale, bias) in cases {
        let row = raw_int8_row(&codes, scale, bias);
        let reference = pooled_bits(
            SelectedKernel::SCALAR,
            &row,
            0,
            QuantScheme::Int8,
            None,
            dim,
            0.25,
        );
        for kernel in supported_kernels() {
            for offset in 0..4 {
                let got = pooled_bits(kernel, &row, offset, QuantScheme::Int8, None, dim, 0.25);
                assert_eq!(
                    got, reference,
                    "kernel {kernel} diverged on scale {scale} bias {bias}"
                );
            }
        }
    }
    // Non-finite *weights* take the third rounding step through the same
    // packed multiply; check those too.
    let row = raw_int8_row(&codes, 0.125, -3.0);
    for weight in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0] {
        let reference = pooled_bits(
            SelectedKernel::SCALAR,
            &row,
            0,
            QuantScheme::Int8,
            Some(weight),
            dim,
            1.5,
        );
        for kernel in supported_kernels() {
            let got = pooled_bits(kernel, &row, 1, QuantScheme::Int8, Some(weight), dim, 1.5);
            assert_eq!(
                got, reference,
                "kernel {kernel} diverged on weight {weight}"
            );
        }
    }
}

/// Odd-dimension int4 rows carry a padding nibble in the last byte.
/// Every kernel must ignore it: garbage in the padding nibble changes
/// nothing, and all kernels agree with the clean row's scalar result.
#[test]
fn int4_padding_nibble_is_ignored_by_every_kernel() {
    for dim in [1usize, 3, 7, 9, 15, 33] {
        let packed_len = dim.div_ceil(2);
        let clean: Vec<u8> = (0..packed_len as u8)
            .map(|i| i.wrapping_mul(29) & 0x77)
            .collect();
        let mut dirty = clean.clone();
        // dim is odd, so the last byte's high nibble is padding.
        *dirty.last_mut().unwrap() |= 0xF0;
        let clean_row = raw_int4_row(&clean, 0.75, -0.25);
        let dirty_row = raw_int4_row(&dirty, 0.75, -0.25);
        let reference = pooled_bits(
            SelectedKernel::SCALAR,
            &clean_row,
            0,
            QuantScheme::Int4,
            None,
            dim,
            0.0,
        );
        for kernel in supported_kernels() {
            for offset in 0..4 {
                let got = pooled_bits(
                    kernel,
                    &dirty_row,
                    offset,
                    QuantScheme::Int4,
                    None,
                    dim,
                    0.0,
                );
                assert_eq!(
                    got, reference,
                    "kernel {kernel} read the int4 padding nibble (dim {dim})"
                );
            }
        }
    }
}

/// Zero-dimension rows (parameter-only int8/int4 buffers, empty fp32
/// buffers) are accepted and leave the accumulator untouched.
#[test]
fn zero_dimension_rows_are_no_ops_for_every_kernel() {
    for scheme in [QuantScheme::Int8, QuantScheme::Int4, QuantScheme::Fp32] {
        let row = quantize_row(&[], scheme);
        assert_eq!(row.len(), scheme.row_bytes(0));
        for kernel in supported_kernels() {
            let bits = pooled_bits(kernel, &row, 0, scheme, None, 0, 0.0);
            assert!(bits.is_empty());
            let bits = pooled_bits(kernel, &row, 2, scheme, Some(2.0), 0, 0.0);
            assert!(bits.is_empty());
        }
    }
}

/// The host actually reports its kernel inventory coherently: scalar is
/// always supported, AVX2 support implies SSE2 support, and `Auto`
/// resolves to the best supported kernel.
#[test]
fn kernel_inventory_is_coherent() {
    assert!(PoolKernel::Scalar.is_supported());
    if PoolKernel::Avx2.is_supported() {
        assert!(PoolKernel::Sse2.is_supported(), "AVX2 host without SSE2");
    }
    let auto = PoolKernel::Auto.resolve();
    if PoolKernel::Avx2.is_supported() {
        assert_eq!(auto.name(), "avx2");
    } else if PoolKernel::Sse2.is_supported() {
        assert_eq!(auto.name(), "sse2");
    } else {
        assert_eq!(auto.name(), "scalar");
    }
    assert_eq!(auto.is_simd(), auto.name() != "scalar");
}

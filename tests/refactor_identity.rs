//! Refactor bit-identity suite: the generic-core cache refactor
//! (`SlotPool<T>` + `ArenaLru` behind the redesigned `sdm-cache` API) must
//! not move a single bit of serving behaviour while the admission policy is
//! the default [`sdm_cache::AlwaysAdmit`].
//!
//! The golden fingerprints below were captured from `main` *before* the
//! refactor (same scenarios, same seeds) — plus the `LruList` derived-
//! `Default` fix, without which every tier-on scenario aborts on stripe
//! corruption (`mixed_size_churn_never_serves_wrong_row` pins that bug).
//! Per scenario they pin:
//!
//! * **scores** — every per-query score bit pattern across three batches
//!   (cold + two warm), so summation order and hit/miss routing are frozen;
//! * **stats** — the merged [`sdm_core::SdmStats`] block plus every
//!   shard's virtual clock;
//! * **cache counters** — `CacheStats` of every engine (dual row cache,
//!   pooled-embedding cache, shared tier) with the `resident_bytes` gauge
//!   masked out;
//! * **resident bytes** — the masked gauge, separately. The arena
//!   size-class coalescing fix is *allowed* to lower retained bytes (that
//!   is its purpose), so this component is asserted as `<=` the golden
//!   value while everything else must match exactly.
//!
//! Scenarios: scaled M1–M3 replicas × exact / relaxed(window 1) × shared
//! tier off / on, under a capacity-constrained budget so the eviction,
//! promotion and split-phase paths all run. Tier-off scenarios use a
//! 2-shard host (shards are independent, so the per-shard thread
//! interleaving cannot move a bit); tier-on scenarios use a 1-shard host —
//! worker threads sharing the tier make multi-shard tier state
//! interleaving-dependent, and a bit-identity suite must only pin
//! deterministic executions. Every stripe path (promotion, hits,
//! eviction, in-place refresh) still runs single-shard.
//!
//! To re-capture (e.g. after an *intentional* behaviour change), run:
//! `SDM_CAPTURE_GOLDEN=1 cargo test --test refactor_identity -- --nocapture`
//! and paste the printed table over `GOLDEN`.

use dlrm::model_zoo;
use sdm_cache::RowCache;
use sdm_core::{SdmConfig, ServingHost};
use sdm_metrics::units::Bytes;
use workload::{Query, QueryGenerator, RoutingPolicy, WorkloadConfig};

/// FNV-1a, the same pinned-seed style the fault-injection suite uses:
/// deterministic, dependency-free, good enough to detect any bit flip.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

fn hash_str(hash: &mut u64, s: &str) {
    fnv1a(hash, s.as_bytes());
}

/// One scenario's frozen observable behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    scores: u64,
    stats: u64,
    cache_counters: u64,
    resident_bytes: u64,
}

fn skewed_queries(model: &dlrm::ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch.min(8),
        ..WorkloadConfig::skewed(48, 1.1)
    };
    QueryGenerator::new(&model.tables, cfg, seed)
        .unwrap()
        .generate(count)
}

/// The M1–M3 scaled replicas (M3 as the user+item subset the shared-tier
/// suite also uses — terabyte-scale table counts exercise nothing extra).
fn models() -> Vec<dlrm::ModelConfig> {
    vec![
        model_zoo::scaled_model(&model_zoo::m1(), 400_000, 60.0),
        model_zoo::scaled_model(&model_zoo::m2(), 400_000, 60.0),
        {
            let mut m3 = model_zoo::scaled_model(&model_zoo::m3(), 4_000_000, 300.0);
            let user: Vec<_> = m3
                .tables
                .iter()
                .filter(|t| t.kind == embedding::TableKind::User)
                .take(20)
                .cloned()
                .collect();
            let item: Vec<_> = m3
                .tables
                .iter()
                .filter(|t| t.kind == embedding::TableKind::Item)
                .take(10)
                .cloned()
                .collect();
            m3.tables = user.into_iter().chain(item).collect();
            m3
        },
    ]
}

/// Capacity-constrained budgets: private slices too small for the hot set
/// (so LRU eviction and, with the tier on, promotion churn all happen) and
/// a small pooled cache so the whole-operator replay path stays live too.
fn scenario_config(window: Option<usize>, tier: bool) -> SdmConfig {
    let mut config = match window {
        None => SdmConfig::for_tests(),
        Some(w) => SdmConfig::for_tests().with_relaxed_batching(w),
    };
    config.cache.row_cache_budget = Bytes::from_kib(96);
    config.cache.pooled_cache_budget = Bytes::from_kib(64);
    if tier {
        config.cache.shared_tier_budget = Bytes::from_kib(128);
        config.cache.shared_tier_stripes = 4;
    }
    config
}

fn run_scenario(
    model: &dlrm::ModelConfig,
    seed: u64,
    window: Option<usize>,
    tier: bool,
) -> Fingerprint {
    let queries = skewed_queries(model, 24, seed);
    let config = scenario_config(window, tier);
    // Tier-on runs must be single-shard to stay deterministic (see the
    // module docs); tier-off runs cover the multi-shard merge paths.
    let shards = if tier { 1 } else { 2 };
    let mut host =
        ServingHost::build(model, &config, seed, shards, RoutingPolicy::UserSticky).unwrap();

    let mut scores = 0xcbf2_9ce4_8422_2325u64;
    for _batch in 0..3 {
        host.run_batch(&queries).unwrap();
        for i in 0..host.len() {
            for s in host.scores(i) {
                fnv1a(&mut scores, &s.to_bits().to_le_bytes());
            }
        }
    }

    let mut stats = 0xcbf2_9ce4_8422_2325u64;
    hash_str(&mut stats, &format!("{:?}", host.stats()));
    for i in 0..host.shards() {
        hash_str(&mut stats, &format!("{:?}", host.shard(i).now()));
    }

    let mut counters = 0xcbf2_9ce4_8422_2325u64;
    let mut resident = 0u64;
    let fold = |stats: &sdm_cache::CacheStats, h: &mut u64, r: &mut u64| {
        *r += stats.resident_bytes;
        let mut masked = stats.clone();
        masked.resident_bytes = 0;
        hash_str(h, &format!("{masked:?}"));
    };
    for i in 0..host.shards() {
        let manager = host.shard(i).manager();
        fold(manager.row_cache().stats(), &mut counters, &mut resident);
        fold(manager.pooled_cache().stats(), &mut counters, &mut resident);
    }
    if let Some(shared) = host.shared_tier() {
        fold(&shared.stats(), &mut counters, &mut resident);
        hash_str(&mut counters, &format!("len={}", shared.len()));
    }

    Fingerprint {
        scores,
        stats,
        cache_counters: counters,
        resident_bytes: resident,
    }
}

/// Golden fingerprints captured from pre-refactor `main`, in scenario
/// order: model-major, then window (exact, relaxed 1), then tier (off, on).
const GOLDEN: &[(u64, u64, u64, u64)] = &[
    (
        0xd3f7ec18a0f85725,
        0x69de990bf9b6c36c,
        0x272a9c82556d3d57,
        98560,
    ), // M1-scaled-400000 window=None tier=false
    (
        0xd3f7ec18a0f85725,
        0x062f73375a7c46d6,
        0xfdf0bbb91c3f082a,
        269266,
    ), // M1-scaled-400000 window=None tier=true
    (
        0xd3f7ec18a0f85725,
        0x23ef01539760f0f8,
        0xf611f7633213feb9,
        98560,
    ), // M1-scaled-400000 window=Some(1) tier=false
    (
        0xd3f7ec18a0f85725,
        0x0da9bb8c3c316835,
        0x6ba372d79f80428a,
        269379,
    ), // M1-scaled-400000 window=Some(1) tier=true
    (
        0xd3f7ec18a0f85725,
        0x2677637bc38bc355,
        0x1847e2ce5336c35c,
        215832,
    ), // M2-scaled-400000 window=None tier=false
    (
        0xd3f7ec18a0f85725,
        0x2b80cfc30494153b,
        0x4fae94828603a9f9,
        822693,
    ), // M2-scaled-400000 window=None tier=true
    (
        0xd3f7ec18a0f85725,
        0xfac7514e9bb44146,
        0x5c0c22eca4e60025,
        219952,
    ), // M2-scaled-400000 window=Some(1) tier=false
    (
        0xd3f7ec18a0f85725,
        0x955d67221e36a0e4,
        0xef1f903ce11a3c0d,
        822693,
    ), // M2-scaled-400000 window=Some(1) tier=true
    (
        0xf162e10a79cd09ed,
        0x4e2bd9686ed1604f,
        0x7ccd1cfdf0c28121,
        69232,
    ), // M3-scaled-4000000 window=None tier=false
    (
        0x92761411a686a6da,
        0x46407e27f2430455,
        0xafea17a1a033ed1c,
        219318,
    ), // M3-scaled-4000000 window=None tier=true
    (
        0x1c9f92842e43545f,
        0xd61afa5e3ec9af6a,
        0x8a6247cdcf1035ae,
        78032,
    ), // M3-scaled-4000000 window=Some(1) tier=false
    (
        0xb38b69e4be69ce82,
        0x4b9b06323fea230c,
        0x1093050b041de749,
        217416,
    ), // M3-scaled-4000000 window=Some(1) tier=true
];

#[test]
fn refactor_is_bit_identical_under_always_admit() {
    let capture = std::env::var_os("SDM_CAPTURE_GOLDEN").is_some();
    let mut fresh = Vec::new();
    for (mi, model) in models().iter().enumerate() {
        let seed = 90 + mi as u64;
        for window in [None, Some(1)] {
            for tier in [false, true] {
                let fp = run_scenario(model, seed, window, tier);
                if capture {
                    println!(
                        "    ({:#018x}, {:#018x}, {:#018x}, {}), // {} window={:?} tier={}",
                        fp.scores,
                        fp.stats,
                        fp.cache_counters,
                        fp.resident_bytes,
                        model.name,
                        window,
                        tier
                    );
                }
                fresh.push((model.name.clone(), window, tier, fp));
            }
        }
    }
    if capture {
        return;
    }
    assert_eq!(fresh.len(), GOLDEN.len(), "scenario count drifted");
    for ((name, window, tier, fp), &(scores, stats, counters, resident)) in fresh.iter().zip(GOLDEN)
    {
        let tag = format!("{name} window={window:?} tier={tier}");
        assert_eq!(fp.scores, scores, "{tag}: per-query scores diverged");
        assert_eq!(fp.stats, stats, "{tag}: SdmStats / clocks diverged");
        assert_eq!(fp.cache_counters, counters, "{tag}: CacheStats diverged");
        // The size-class coalescing fix may only *lower* retention.
        assert!(
            fp.resident_bytes <= resident,
            "{tag}: resident_bytes grew: {} > golden {}",
            fp.resident_bytes,
            resident
        );
    }
}

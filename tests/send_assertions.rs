//! Static `Send` assertions for the sharded serving stack.
//!
//! `ServingHost` moves whole shards onto `std::thread::scope` worker
//! threads, so every layer of the per-shard state must be `Send`: the
//! shard itself, the inference engine and its scratch, the memory manager,
//! the caches and the IO engine. These are compile-time assertions — if a
//! future change introduces an `Rc`, a raw pointer or a non-`Send` trait
//! object anywhere in the stack, this suite stops compiling instead of the
//! regression surfacing as a confusing build error (or worse, forcing the
//! host back to single-stream serving).

use dlrm::{InferenceEngine, PoolingBuffers, QueryResult};
use io_engine::IoEngine;
use sdm_cache::{DualRowCache, PooledEmbeddingCache, SharedRowTier};
use sdm_core::{SdmMemoryManager, SdmSystem, ServingHost, Shard};
use workload::Scheduler;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn per_shard_serving_state_is_send() {
    // The shard type a worker thread owns, and the system wrapper.
    assert_send::<Shard>();
    assert_send::<SdmSystem>();
    assert_send::<ServingHost>();
}

#[test]
fn shard_components_are_send() {
    // Every layer inside a shard, individually, so a regression points at
    // the offending component rather than just at `Shard`.
    assert_send::<InferenceEngine>();
    assert_send::<PoolingBuffers>();
    assert_send::<QueryResult>();
    assert_send::<SdmMemoryManager>();
    assert_send::<IoEngine>();
    assert_send::<DualRowCache>();
    assert_send::<PooledEmbeddingCache>();
    assert_send::<Scheduler>();
}

#[test]
fn shared_tier_is_send_and_sync() {
    // The host-shared tier is handed to every shard as an `Arc` and probed
    // concurrently from `std::thread::scope` workers through `&self`, so it
    // must be both `Send` and `Sync` — unlike the private caches, which
    // only ever move with their owning shard. These assertions are what
    // makes the tier's loom-free concurrency contract a compile-time fact:
    // interior mutability anywhere but the stripe mutexes would break them.
    assert_send::<SharedRowTier>();
    assert_sync::<SharedRowTier>();
    assert_send::<std::sync::Arc<SharedRowTier>>();
    assert_sync::<std::sync::Arc<SharedRowTier>>();
    // Managers stay `Send` with a tier handle attached (Arc<T: Send+Sync>).
    assert_send::<SdmMemoryManager>();
}

//! Equivalence suite: `SdmSystem::run_batch` must be **bit-identical** to
//! looping `run_query` — same scores, same latency breakdowns, same cache
//! hit/miss counters, same IO byte totals — across the model zoo and a
//! range of batch sizes.
//!
//! This is the contract that makes the batched hot path a pure host-side
//! optimisation: batching reuses scratch buffers and submits each
//! operator's misses as one ring submission, but every query still observes
//! exactly the virtual-time and cache state a sequential serving loop would
//! have produced.

use dlrm::model_zoo;
use sdm_cache::RowCache;
use sdm_core::{SdmConfig, SdmSystem};
use sdm_metrics::units::Bytes;
use workload::{Query, QueryGenerator, WorkloadConfig};

/// Batch sizes exercised for every model: single query, small batch, and a
/// batch larger than the paper's typical ranking burst.
const BATCH_SIZES: &[usize] = &[1, 8, 33];

fn queries_for(model: &dlrm::ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch.min(8),
        user_population: 400,
        ..WorkloadConfig::default()
    };
    QueryGenerator::new(&model.tables, cfg, seed)
        .unwrap()
        .generate(count)
}

fn scaled_config() -> SdmConfig {
    SdmConfig {
        device_capacity: Bytes::from_mib(64),
        cache: sdm_cache::CacheConfig::with_total_budget(Bytes::from_mib(4)),
        ..SdmConfig::for_tests()
    }
}

/// Runs the same stream through a per-query loop and through `run_batch` on
/// two identically built systems and asserts bit-identical behaviour.
///
/// The two systems are built once and the batch sizes consume successive
/// chunks of one query stream, so the suite also proves equivalence on
/// *warm* cache state, not just from cold.
fn assert_equivalent(model: &dlrm::ModelConfig, config: SdmConfig, seed: u64) {
    let total: usize = BATCH_SIZES.iter().sum();
    let queries = queries_for(model, total, seed);
    let mut looped = SdmSystem::build(model, config.clone(), seed).unwrap();
    let mut batched = SdmSystem::build(model, config, seed).unwrap();
    let mut at = 0usize;
    for &batch in BATCH_SIZES {
        let stream = &queries[at..at + batch];
        at += batch;

        let mut loop_results = Vec::new();
        for q in stream {
            loop_results.push(looped.run_query(q).unwrap());
        }
        let report = batched.run_batch(stream).unwrap();

        // Per-query results: scores bit-for-bit, latency breakdowns equal.
        assert_eq!(batched.batch_len(), stream.len());
        assert_eq!(report.queries, stream.len() as u64);
        for (i, r) in loop_results.iter().enumerate() {
            assert_eq!(
                r.scores.as_slice(),
                batched.batch_scores(i),
                "{}: scores diverge at query {i} (batch {batch})",
                model.name
            );
            assert_eq!(
                r.latency,
                batched.batch_latency(i),
                "{}: latency diverges at query {i} (batch {batch})",
                model.name
            );
        }

        // Virtual clocks advanced identically.
        assert_eq!(
            looped.now(),
            batched.now(),
            "{}: clocks diverge",
            model.name
        );

        // Cache hit/miss counters identical.
        let a = looped.manager().stats();
        let b = batched.manager().stats();
        assert_eq!(a.pooled_ops, b.pooled_ops);
        assert_eq!(a.pooled_cache_hits, b.pooled_cache_hits);
        assert_eq!(a.row_cache_hits, b.row_cache_hits);
        assert_eq!(a.sm_reads, b.sm_reads);
        assert_eq!(a.fm_direct_lookups, b.fm_direct_lookups);
        assert_eq!(a.pruned_zero_rows, b.pruned_zero_rows);
        assert_eq!(a.sm_bytes_read, b.sm_bytes_read);
        assert_eq!(a.sm_bus_bytes, b.sm_bus_bytes);
        assert_eq!(a.io_time, b.io_time);
        assert_eq!(a.pooling_time, b.pooling_time);

        // IO engine totals identical (submissions, bytes, queueing).
        let ia = looped.manager().io_engine().stats();
        let ib = batched.manager().io_engine().stats();
        assert_eq!(ia.submitted, ib.submitted);
        assert_eq!(ia.completed, ib.completed);
        assert_eq!(ia.bus_bytes, ib.bus_bytes);
        assert_eq!(ia.requested_bytes, ib.requested_bytes);
        assert_eq!(ia.queue_delay, ib.queue_delay);
        assert_eq!(ia.device_time, ib.device_time);

        // Row-cache state itself converged to the same contents.
        assert_eq!(
            looped.manager().row_cache().len(),
            batched.manager().row_cache().len()
        );
        assert_eq!(
            looped.manager().row_cache().memory_used(),
            batched.manager().row_cache().memory_used()
        );
    }
}

#[test]
fn tiny_models_batch_equals_loop() {
    assert_equivalent(&model_zoo::tiny(3, 2, 500), SdmConfig::for_tests(), 11);
    assert_equivalent(&model_zoo::tiny(1, 0, 300), SdmConfig::for_tests(), 12);
}

#[test]
fn tiny_pruned_model_batch_equals_loop() {
    let mut model = model_zoo::tiny(2, 1, 400);
    model.tables[0].pruned_fraction = 0.4;
    assert_equivalent(&model, SdmConfig::for_tests(), 13);
}

#[test]
fn m1_scaled_batch_equals_loop() {
    let model = model_zoo::scaled_model(&model_zoo::m1(), 400_000, 60.0);
    assert_equivalent(&model, scaled_config(), 21);
}

#[test]
fn m2_scaled_batch_equals_loop() {
    let model = model_zoo::scaled_model(&model_zoo::m2(), 400_000, 60.0);
    assert_equivalent(&model, scaled_config(), 22);
}

#[test]
fn m3_scaled_batch_equals_loop() {
    // M3 is the terabyte-scale model (2700 tables); equivalence is decided
    // per embedding operator, so a subset of its tables exercises exactly
    // the same code paths at a fraction of the cost. Keep the first 60 user
    // and 30 item tables with their real M3 descriptors.
    let mut model = model_zoo::scaled_model(&model_zoo::m3(), 4_000_000, 300.0);
    let user: Vec<_> = model
        .tables
        .iter()
        .filter(|t| t.kind == embedding::TableKind::User)
        .take(60)
        .cloned()
        .collect();
    let item: Vec<_> = model
        .tables
        .iter()
        .filter(|t| t.kind == embedding::TableKind::Item)
        .take(30)
        .cloned()
        .collect();
    model.tables = user.into_iter().chain(item).collect();
    assert_equivalent(&model, scaled_config(), 23);
}

#[test]
fn nand_flash_block_granularity_batch_equals_loop() {
    // The heavier IO path (block reads, read amplification) must stay
    // equivalent too.
    let model = model_zoo::tiny(2, 1, 400);
    assert_equivalent(&model, SdmConfig::for_tests().with_nand_flash(), 31);
}

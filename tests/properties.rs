//! Property-based tests over the core data structures and invariants.

use embedding::{dequantize_row, quantize_row, QuantScheme, SmLayout, TableDescriptor, TableKind};
use proptest::prelude::*;
use sdm_cache::{CpuOptimizedCache, MemoryOptimizedCache, PooledEmbeddingCache, RowCache, RowKey};
use sdm_metrics::units::Bytes;
use sdm_metrics::{LatencyHistogram, SimDuration};

proptest! {
    // Case count and RNG seed are pinned so CI runs are deterministic; a
    // failure report names the case index, which reproduces exactly. The
    // seed is suite-specific so this file is insulated from changes to the
    // shim's default.
    #![proptest_config(ProptestConfig::with_cases(64).with_seed(0x5d11_0001))]

    /// Quantise → dequantise reconstructs every element within the scheme's
    /// quantisation step.
    #[test]
    fn quantization_roundtrip_error_is_bounded(
        values in prop::collection::vec(-10.0f32..10.0, 1..200),
        scheme_pick in 0u8..3,
    ) {
        let scheme = match scheme_pick {
            0 => QuantScheme::Int8,
            1 => QuantScheme::Int4,
            _ => QuantScheme::Fp32,
        };
        let encoded = quantize_row(&values, scheme);
        prop_assert_eq!(encoded.len(), scheme.row_bytes(values.len()));
        let decoded = dequantize_row(&encoded, scheme, values.len()).unwrap();
        prop_assert_eq!(decoded.len(), values.len());
        let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let step = match scheme {
            QuantScheme::Int8 => (max - min).max(f32::EPSILON) / 255.0,
            QuantScheme::Int4 => (max - min).max(f32::EPSILON) / 15.0,
            QuantScheme::Fp32 => 0.0,
        };
        for (a, b) in values.iter().zip(&decoded) {
            prop_assert!((a - b).abs() <= step * 1.01 + 1e-6, "{} vs {} (step {})", a, b, step);
        }
    }

    /// Row caches never exceed their byte budget and never lose the most
    /// recently inserted entry (as long as it fits on its own).
    #[test]
    fn caches_respect_their_budget(
        ops in prop::collection::vec((0u32..4, 0u64..500, 1usize..300), 1..300),
        budget_kib in 1u64..64,
    ) {
        let budget = Bytes::from_kib(budget_kib);
        let mut memory = MemoryOptimizedCache::new(budget, 16);
        let mut cpu = CpuOptimizedCache::new(budget);
        for (table, row, len) in ops {
            let key = RowKey::new(table, row);
            let value = vec![0xABu8; len];
            memory.insert(key, &value);
            cpu.insert(key, &value);
            prop_assert!(memory.memory_used() <= memory.budget());
            prop_assert!(cpu.memory_used() <= cpu.budget());
        }
    }

    /// The SM layout never overlaps two tables on the same device and always
    /// honours the alignment.
    #[test]
    fn layout_never_overlaps_tables(
        rows in prop::collection::vec(1u64..2_000, 1..12),
        dims in prop::collection::vec(4usize..128, 1..12),
        devices in 1usize..4,
    ) {
        let n = rows.len().min(dims.len());
        let tables: Vec<TableDescriptor> = (0..n)
            .map(|i| TableDescriptor::new(i as u32, format!("t{i}"), TableKind::User, rows[i], dims[i]))
            .collect();
        let layout = match SmLayout::plan(&tables, devices, Bytes::from_mib(16), Bytes(512)) {
            Ok(l) => l,
            Err(_) => return Ok(()), // doesn't fit: rejection is the correct behaviour
        };
        let mut spans: Vec<(usize, u64, u64)> = layout
            .iter()
            .map(|(_, p)| (p.device_index, p.base_offset, p.base_offset + p.footprint().as_u64()))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].2 <= w[1].1, "tables overlap: {:?}", w);
            }
        }
        for (_, p) in layout.iter() {
            prop_assert_eq!(p.base_offset % 512, 0);
            prop_assert!(p.device_index < devices);
        }
    }

    /// The pooled-embedding cache key is order invariant and
    /// multiset-sensitive.
    #[test]
    fn pooled_cache_key_is_order_invariant(
        mut indices in prop::collection::vec(0u64..1_000_000, 2..64),
    ) {
        let mut cache = PooledEmbeddingCache::new(Bytes::from_kib(256), 1);
        cache.insert(7, &indices, &[1.0, 2.0, 3.0]);
        let mut reversed = indices.clone();
        reversed.reverse();
        prop_assert!(cache.lookup(7, &reversed).is_some());
        // Dropping one element must miss (different multiset).
        let last = indices.pop();
        prop_assert!(last.is_some());
        if !indices.is_empty() {
            prop_assert!(cache.lookup(7, &indices).is_none());
        }
    }

    /// Histogram percentiles are monotone in the quantile and bounded by the
    /// recorded extremes.
    #[test]
    fn histogram_percentiles_are_monotone_and_bounded(
        samples in prop::collection::vec(1u64..10_000_000, 1..500),
    ) {
        let mut hist = LatencyHistogram::new();
        for &s in &samples {
            hist.record(SimDuration::from_nanos(s));
        }
        let quantiles = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = SimDuration::ZERO;
        for &q in &quantiles {
            let p = hist.percentile(q);
            prop_assert!(p >= last);
            prop_assert!(p <= hist.max());
            last = p;
        }
        prop_assert!(hist.min() <= hist.mean());
        prop_assert!(hist.mean() <= hist.max());
        prop_assert_eq!(hist.count(), samples.len() as u64);
    }

    /// Pooling is order independent: summing rows in any order produces the
    /// same pooled vector.
    #[test]
    fn pooling_is_order_independent(
        rows in prop::collection::vec(prop::collection::vec(-4.0f32..4.0, 16), 1..20),
    ) {
        let quantised: Vec<Vec<u8>> = rows.iter().map(|r| quantize_row(r, QuantScheme::Int8)).collect();
        let forward: Vec<&[u8]> = quantised.iter().map(|r| r.as_slice()).collect();
        let mut backward = forward.clone();
        backward.reverse();
        let a = embedding::pooling::pool_quantized(&forward, QuantScheme::Int8, 16).unwrap();
        let b = embedding::pooling::pool_quantized(&backward, QuantScheme::Int8, 16).unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}

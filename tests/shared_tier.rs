//! Shared host cache tier: equivalence, conservation and cross-shard reuse.
//!
//! What the tier must and must not change:
//!
//! * **Disabled tier (the default)** — serving is bit-identical to the
//!   committed PR-4 behaviour: a 1-shard host (exact mode, and relaxed
//!   window 1) reproduces the single-stream `SdmSystem` scores, latencies,
//!   clock and counters exactly, and `ServingHost::shared_tier()` is
//!   `None`.
//! * **Enabled tier** — scores stay within f32 reassociation tolerance of
//!   the single-stream baseline at every shard count: a shared-tier hit
//!   pools the same row bytes a private hit or SM read would have, only
//!   the hit/miss split (and therefore the summation order) moves.
//! * **Conservation** — every SM-resident row access is exactly one of
//!   {private hit, shared hit, SM read}, so
//!   `row_cache_hits + shared_tier_hits + sm_reads` (plus pruned zero
//!   rows) is invariant across shard counts and tier states.
//! * **Cross-shard reuse** — on a skewed Zipf stream with private caches
//!   too small for the hot set, shards serve each other's promotions:
//!   cross-shard hits are strictly positive and SM reads drop relative to
//!   the tier-off host.

use dlrm::model_zoo;
use sdm_core::{SdmConfig, SdmSystem, ServingHost};
use sdm_metrics::units::Bytes;
use workload::{Query, QueryGenerator, RoutingPolicy, WorkloadConfig};

fn skewed_queries(model: &dlrm::ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch.min(8),
        ..WorkloadConfig::skewed(48, 1.1)
    };
    QueryGenerator::new(&model.tables, cfg, seed)
        .unwrap()
        .generate(count)
}

/// Pooled cache off (whole-operator replay would hide the row path) and a
/// private row budget small enough that divided slices cannot hold the hot
/// set — the regime the shared tier exists for.
fn constrained_config() -> SdmConfig {
    let mut config = SdmConfig::for_tests();
    config.cache.row_cache_budget = Bytes::from_kib(64);
    config.cache.pooled_cache_budget = Bytes::ZERO;
    config
}

fn assert_scores_close(got: &[f32], want: &[f32], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: score count");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        let tol = 1e-4 * a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "{context}: score {i} diverges beyond reassociation tolerance: {a} vs {b}"
        );
    }
}

/// With the tier disabled (the default config), a 1-shard host — in exact
/// mode and at relaxed window 1 — remains bit-identical to the
/// single-stream system across the M1–M3 scaled replicas.
#[test]
fn tier_disabled_single_shard_serving_is_bit_identical() {
    let models = [
        model_zoo::scaled_model(&model_zoo::m1(), 400_000, 60.0),
        model_zoo::scaled_model(&model_zoo::m2(), 400_000, 60.0),
        {
            // M3 is terabyte-scale (2700 tables); a user+item subset
            // exercises the same code paths at a fraction of the cost.
            let mut m3 = model_zoo::scaled_model(&model_zoo::m3(), 4_000_000, 300.0);
            let user: Vec<_> = m3
                .tables
                .iter()
                .filter(|t| t.kind == embedding::TableKind::User)
                .take(20)
                .cloned()
                .collect();
            let item: Vec<_> = m3
                .tables
                .iter()
                .filter(|t| t.kind == embedding::TableKind::Item)
                .take(10)
                .cloned()
                .collect();
            m3.tables = user.into_iter().chain(item).collect();
            m3
        },
    ];
    for (mi, model) in models.iter().enumerate() {
        let seed = 60 + mi as u64;
        let queries = skewed_queries(model, 24, seed);
        for window in [None, Some(1)] {
            let config = match window {
                None => SdmConfig::for_tests(),
                Some(w) => SdmConfig::for_tests().with_relaxed_batching(w),
            };
            assert!(config.cache.shared_tier_budget.is_zero());
            let mut host =
                ServingHost::build(model, &config, seed, 1, RoutingPolicy::UserSticky).unwrap();
            assert!(host.shared_tier().is_none(), "tier must be off by default");
            let mut system = SdmSystem::build(model, config, seed).unwrap();
            host.run_batch(&queries).unwrap();
            system.run_batch(&queries).unwrap();
            let tag = format!("{} (window {window:?})", model.name);
            assert_eq!(host.len(), system.batch_len(), "{tag}: batch length");
            for i in 0..host.len() {
                assert_eq!(host.scores(i), system.batch_scores(i), "{tag}: query {i}");
                assert_eq!(
                    host.latency(i),
                    system.batch_latency(i),
                    "{tag}: latency {i}"
                );
            }
            assert_eq!(host.shard(0).now(), system.now(), "{tag}: clock");
            let a = host.stats();
            let b = system.manager().stats();
            assert_eq!(a.row_cache_hits, b.row_cache_hits, "{tag}: hits");
            assert_eq!(a.sm_reads, b.sm_reads, "{tag}: sm reads");
            assert_eq!(a.io_time, b.io_time, "{tag}: io time");
            assert_eq!(a.shared_tier_hits, 0, "{tag}: no tier, no tier hits");
            assert_eq!(a.shared_tier_misses, 0, "{tag}: no tier, no tier probes");
        }
    }
}

/// With the tier enabled at 2 and 4 shards, scores stay reassociation-tight
/// against the single-stream baseline, the row-access conservation law
/// holds, and cross-shard hits are strictly positive on the skewed stream.
#[test]
fn tier_enabled_sharding_stays_equivalent_and_recovers_reuse() {
    let model = model_zoo::tiny(3, 2, 500);
    let queries = skewed_queries(&model, 64, 71);
    let config = constrained_config();

    // Baseline: single stream, tier off.
    let mut baseline = SdmSystem::build(&model, config.clone(), 71).unwrap();
    baseline.run_batch(&queries).unwrap();
    let base = baseline.manager().stats().clone();
    let base_accesses = base.row_cache_hits + base.sm_reads + base.pruned_zero_rows;
    assert_eq!(base.shared_tier_hits, 0);

    for shards in [2usize, 4] {
        // Tier-off host at the same shard count, for the SM-read contrast.
        let mut off =
            ServingHost::build(&model, &config, 71, shards, RoutingPolicy::UserSticky).unwrap();
        off.run_batch(&queries).unwrap();
        let off_stats = off.stats();

        let enabled = config.clone().with_shared_tier(Bytes::from_mib(2));
        let mut host =
            ServingHost::build(&model, &enabled, 71, shards, RoutingPolicy::UserSticky).unwrap();
        let tier = host.shared_tier().expect("tier enabled");
        assert_eq!(tier.stripe_count(), enabled.cache.shared_tier_stripes);
        host.run_batch(&queries).unwrap();

        let tag = format!("{shards} shards");
        for i in 0..queries.len() {
            assert_scores_close(
                host.scores(i),
                baseline.batch_scores(i),
                &format!("{tag}: query {i}"),
            );
        }

        // Conservation: per-query decisions are partition-invariant, and
        // every SM-resident row access is exactly one of private hit,
        // shared hit, or SM read.
        let agg = host.stats();
        assert_eq!(agg.pooled_ops, base.pooled_ops, "{tag}: pooled_ops");
        assert_eq!(
            agg.fm_direct_lookups, base.fm_direct_lookups,
            "{tag}: fm lookups"
        );
        assert_eq!(
            agg.row_cache_hits + agg.shared_tier_hits + agg.sm_reads + agg.pruned_zero_rows,
            base_accesses,
            "{tag}: row-access conservation"
        );

        // The reuse the tier exists for: strictly positive cross-shard
        // hits, and strictly fewer SM reads than the tier-off host.
        assert!(agg.shared_tier_hits > 0, "{tag}: no shared hits");
        assert!(
            agg.shared_tier_cross_hits > 0,
            "{tag}: no cross-shard hits on a skewed stream"
        );
        assert!(agg.shared_tier_hit_rate() > 0.0);
        assert!(agg.shared_tier_cross_hit_rate() > 0.0);
        assert!(
            agg.sm_reads < off_stats.sm_reads,
            "{tag}: tier did not reduce SM reads ({} vs {})",
            agg.sm_reads,
            off_stats.sm_reads
        );
        assert!(agg.shared_tier_promotions > 0);

        // Tier bookkeeping: resident, bounded, and populated.
        let tier = host.shared_tier().unwrap();
        assert!(!tier.is_empty());
        assert!(tier.memory_used() <= tier.budget());
        let cache_stats = tier.stats();
        assert_eq!(cache_stats.hits, agg.shared_tier_hits, "{tag}: tier hits");
        assert!(cache_stats.insertions > 0);
    }
}

/// The relaxed (overlapped) executor serves correctly through the shared
/// tier: scores stay tight against the exact tier-on host and the same
/// conservation law holds.
#[test]
fn relaxed_mode_with_shared_tier_stays_equivalent() {
    let model = model_zoo::tiny(2, 1, 400);
    let queries = skewed_queries(&model, 48, 83);
    let exact_cfg = constrained_config().with_shared_tier(Bytes::from_mib(2));
    let relaxed_cfg = exact_cfg.clone().with_relaxed_batching(4);

    let mut exact =
        ServingHost::build(&model, &exact_cfg, 83, 2, RoutingPolicy::UserSticky).unwrap();
    let mut relaxed =
        ServingHost::build(&model, &relaxed_cfg, 83, 2, RoutingPolicy::UserSticky).unwrap();
    exact.run_batch(&queries).unwrap();
    relaxed.run_batch(&queries).unwrap();

    for i in 0..queries.len() {
        assert_scores_close(relaxed.scores(i), exact.scores(i), &format!("query {i}"));
    }
    let a = exact.stats();
    let b = relaxed.stats();
    assert_eq!(
        a.row_cache_hits + a.shared_tier_hits + a.sm_reads,
        b.row_cache_hits + b.shared_tier_hits + b.sm_reads,
        "row-access conservation across batch modes"
    );
    assert!(b.shared_tier_hits > 0);
    assert!(b.shared_tier_cross_hits > 0);
}

/// Repeated batches on a tier-enabled host settle into shared-tier serving:
/// the steady-state batch performs no SM reads at all once the tier holds
/// the hot set, while the tier-off host keeps re-reading rows its divided
/// private slices cannot retain.
#[test]
fn steady_state_tier_serving_eliminates_duplicate_sm_reads() {
    let model = model_zoo::tiny(2, 1, 400);
    let queries = skewed_queries(&model, 48, 97);
    let config = constrained_config().with_shared_tier(Bytes::from_mib(4));
    let mut host = ServingHost::build(&model, &config, 97, 4, RoutingPolicy::UserSticky).unwrap();
    host.run_batch(&queries).unwrap();
    host.run_batch(&queries).unwrap();
    let warmed = host.stats();
    host.run_batch(&queries).unwrap();
    let after = host.stats();
    let steady_sm_reads = after.sm_reads - warmed.sm_reads;
    assert_eq!(
        steady_sm_reads, 0,
        "steady-state batch still read {steady_sm_reads} rows from SM"
    );
    assert!(after.shared_tier_hits > warmed.shared_tier_hits);
    // The tier caches each hot row once for the whole host.
    let tier = host.shared_tier().unwrap();
    assert!(!tier.is_empty());
    assert!(tier.memory_used() <= tier.budget());
}

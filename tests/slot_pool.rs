//! Pinned-seed property suite for [`sdm_cache::SlotPool`]: thousands of
//! randomised acquire/release/reset interleavings checked against a naive
//! reference model. The pool now backs every split-phase pipeline (the SDM
//! manager's pending lookups, the shard's relaxed scratch and the DRAM
//! backend's begun-lookup slab), so its invariants — slot conservation,
//! generation-safe tickets, deterministic reuse — are load-bearing for all
//! of them.

use sdm_cache::SlotPool;

/// SplitMix64: deterministic, dependency-free pinned-seed randomness (the
/// same style the fault-injection suite uses).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[test]
fn random_interleavings_conserve_slots_and_stale_every_dead_ticket() {
    let mut rng = Rng(0x5d_2022);
    let mut pool: SlotPool<Vec<u8>> = SlotPool::new();
    // Reference model: id -> live ticket of every held slot.
    let mut held: Vec<(usize, u64)> = Vec::new();
    // Every ticket ever issued; dead ones must stay dead forever.
    let mut dead: Vec<u64> = Vec::new();

    for step in 0..20_000 {
        match rng.below(100) {
            // Acquire (weighted up so the pool actually grows).
            0..=44 => {
                let id = pool.acquire();
                assert!(
                    !held.iter().any(|&(h, _)| h == id),
                    "step {step}: acquired already-held slot {id}"
                );
                let ticket = pool.ticket(id);
                pool.slot_mut(id).push(step as u8);
                held.push((id, ticket));
            }
            // Release a random held slot.
            45..=89 => {
                if held.is_empty() {
                    continue;
                }
                let pick = rng.below(held.len() as u64) as usize;
                let (id, ticket) = held.swap_remove(pick);
                assert_eq!(
                    pool.checked_slot(ticket),
                    Some(id),
                    "step {step}: live ticket failed to resolve"
                );
                pool.release(id);
                dead.push(ticket);
            }
            // Reset abandons everything in flight.
            _ => {
                pool.reset();
                dead.extend(held.drain(..).map(|(_, t)| t));
                assert!(pool.all_free(), "step {step}: reset left slots held");
            }
        }

        // Conservation: every slot is either held or free, never both.
        assert_eq!(
            pool.free_len() + held.len(),
            pool.len(),
            "step {step}: slot conservation violated"
        );
        // Every live ticket resolves to its own slot.
        for &(id, ticket) in &held {
            assert_eq!(pool.checked_slot(ticket), Some(id));
        }
        // Dead tickets never come back to life, even after their slot is
        // re-acquired (check a rotating sample to keep the suite fast).
        if !dead.is_empty() {
            let probe = dead[step % dead.len()];
            assert_eq!(
                pool.checked_slot(probe),
                None,
                "step {step}: dead ticket resolved"
            );
        }
    }

    assert!(pool.len() > 8, "suite never exercised pool growth");
    assert!(!dead.is_empty(), "suite never released a slot");
}

#[test]
fn payload_capacity_survives_churn() {
    let mut rng = Rng(77);
    let mut pool: SlotPool<Vec<u8>> = SlotPool::new();
    // Warm a handful of slots with sizeable payloads.
    let ids: Vec<usize> = (0..8).map(|_| pool.acquire()).collect();
    for &id in &ids {
        pool.slot_mut(id).resize(256, 0);
    }
    for &id in &ids {
        pool.release(id);
    }
    // Randomised churn must never allocate: capacity is recycled in place.
    for _ in 0..1_000 {
        let id = pool.acquire();
        assert!(
            pool.slot(id).capacity() >= 256,
            "recycled payload lost its capacity"
        );
        let len = rng.below(256) as usize;
        pool.slot_mut(id).clear();
        pool.slot_mut(id).resize(len, 1);
        pool.release(id);
    }
    assert_eq!(pool.len(), 8, "churn grew the pool past its warm set");
}

#[test]
fn reset_restores_deterministic_acquire_order() {
    let mut pool: SlotPool<u32> = SlotPool::new();
    let first: Vec<usize> = (0..6).map(|_| pool.acquire()).collect();
    pool.reset();
    let second: Vec<usize> = (0..6).map(|_| pool.acquire()).collect();
    assert_eq!(
        first, second,
        "steady-state pipelines must assign slots identically after reset"
    );
}

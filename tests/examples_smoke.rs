//! Smoke-runs every example end-to-end via `cargo run --example` and
//! asserts a zero exit code, so CI catches examples that rot as the crate
//! APIs evolve.
//!
//! Spawning cargo from a test is safe: the build lock is released while
//! tests execute, and concurrent example builds serialize on it.

use std::process::Command;

fn run_example(name: &str) {
    let cargo = env!("CARGO");
    // Release profile: the library dependency graph is already compiled by
    // the tier-1 `cargo build --release`, so only the example itself links
    // here (ci.sh pre-builds even that via `--examples`). Example builds
    // serialize on the cargo lock; subsequent runs are fully cached.
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--release", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs_clean() {
    run_example("quickstart");
}

#[test]
fn serve_m1_on_nand_runs_clean() {
    run_example("serve_m1_on_nand");
}

#[test]
fn capacity_planning_runs_clean() {
    run_example("capacity_planning");
}

#[test]
fn placement_tuning_runs_clean() {
    run_example("placement_tuning");
}

//! Integration tests: the full SDM stack against the DRAM baseline.

use dlrm::{model_zoo, ComputeModel, DramBackend, InferenceEngine};
use sdm_core::{ModelUpdater, SdmConfig, SdmSystem, UpdateKind};
use sdm_metrics::SimInstant;
use workload::{Query, QueryGenerator, WorkloadConfig};

fn queries(model: &dlrm::ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch,
        user_population: 500,
        ..WorkloadConfig::default()
    };
    QueryGenerator::new(&model.tables, cfg, seed)
        .unwrap()
        .generate(count)
}

#[test]
fn sdm_and_dram_backends_rank_items_identically() {
    let model = model_zoo::tiny(3, 2, 600);
    let config = SdmConfig::for_tests();
    let seed = config.seed;
    let mut sdm = SdmSystem::build(&model, config, 11).unwrap();
    let engine = InferenceEngine::new(model.clone(), ComputeModel::default(), 11).unwrap();
    let mut dram = DramBackend::from_tables(
        model
            .tables
            .iter()
            .map(|d| embedding::EmbeddingTable::generate(d, seed))
            .collect(),
    );

    for q in queries(&model, 10, 3) {
        let sdm_result = sdm.run_query(&q).unwrap();
        let dram_result = engine.execute(&q, &mut dram, SimInstant::EPOCH).unwrap();
        assert_eq!(sdm_result.scores.len(), dram_result.scores.len());
        for (a, b) in sdm_result.scores.iter().zip(&dram_result.scores) {
            assert!((a - b).abs() < 1e-3, "scores diverge: {a} vs {b}");
        }
    }
}

#[test]
fn cache_warms_up_and_serving_gets_faster() {
    let model = model_zoo::tiny(4, 1, 800);
    let mut system = SdmSystem::build(&model, SdmConfig::for_tests(), 5).unwrap();
    let stream = queries(&model, 120, 5);
    let cold = system.run_queries(&stream[..40]).unwrap();
    let warm = system.run_queries(&stream[80..]).unwrap();
    assert!(warm.mean_latency <= cold.mean_latency);
    let stats = system.manager().stats();
    assert!(
        stats.row_cache_hit_rate() > 0.2,
        "hit rate {}",
        stats.row_cache_hit_rate()
    );
    assert!(stats.sm_reads > 0);
    assert!(stats.pooled_ops > 0);
}

#[test]
fn full_update_serves_new_weights_and_survives_warmup() {
    let model = model_zoo::tiny(2, 1, 400);
    let mut system = SdmSystem::build(&model, SdmConfig::for_tests(), 9).unwrap();
    let stream = queries(&model, 30, 9);
    let before = system.run_query(&stream[0]).unwrap();

    let report = ModelUpdater::apply(system.manager_mut(), UpdateKind::Full, 12345).unwrap();
    assert!(report.caches_invalidated);

    // Same query now produces different scores (new embedding snapshot) but
    // the system keeps serving correctly.
    let after = system.run_query(&stream[0]).unwrap();
    assert_eq!(before.scores.len(), after.scores.len());
    assert!(
        before
            .scores
            .iter()
            .zip(&after.scores)
            .any(|(a, b)| (a - b).abs() > 1e-6),
        "scores unchanged after a full model update"
    );
    let rest = system.run_queries(&stream[1..]).unwrap();
    assert_eq!(rest.queries, 29);
}

#[test]
fn nand_and_optane_both_serve_but_optane_is_faster_under_load() {
    let model = model_zoo::tiny(4, 1, 600);
    let stream = queries(&model, 60, 7);
    let mut optane = SdmSystem::build(&model, SdmConfig::for_tests(), 7).unwrap();
    let mut nand = SdmSystem::build(&model, SdmConfig::for_tests().with_nand_flash(), 7).unwrap();
    let optane_report = optane.run_queries(&stream).unwrap();
    let nand_report = nand.run_queries(&stream).unwrap();
    assert!(optane_report.mean_latency < nand_report.mean_latency);
    assert!(optane_report.qps_single_stream > nand_report.qps_single_stream);
}

#[test]
fn interop_parallelism_improves_latency_on_the_sdm_backend() {
    let model = model_zoo::tiny(4, 2, 500);
    let stream = queries(&model, 40, 13);
    let mut seq = SdmSystem::build(&model, SdmConfig::for_tests().with_nand_flash(), 13).unwrap();
    seq.engine_mut().set_mode(dlrm::ExecutionMode::Sequential);
    let mut par = SdmSystem::build(&model, SdmConfig::for_tests().with_nand_flash(), 13).unwrap();
    par.engine_mut()
        .set_mode(dlrm::ExecutionMode::InterOpParallel);
    let seq_report = seq.run_queries(&stream).unwrap();
    let par_report = par.run_queries(&stream).unwrap();
    assert!(par_report.mean_latency < seq_report.mean_latency);
}

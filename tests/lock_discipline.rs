//! Lock-discipline instrumentation, end to end (debug builds).
//!
//! `sdm_cache::TrackedMutex` wraps the `SharedRowTier` stripe locks and the
//! memory manager calls `sdm_cache::assert_no_locks_held` at the SM submit
//! boundary. This suite seeds both violations the instrumentation exists to
//! catch and proves each is *detected* (a caught panic, not a deadlock or a
//! silent pass), then runs the full serving pipeline — exact, relaxed, and
//! shared-tier configurations — to show the discipline holds on the real
//! code. A release-build compilation of this test asserts the tracking
//! layer adds no bytes to the lock (`TrackedMutex` is a transparent
//! `Mutex`).

use sdm_cache::TrackedMutex;

#[cfg(debug_assertions)]
mod detection {
    use sdm_cache::{assert_no_locks_held, LockRegistry, SharedRowTier, TrackedMutex};
    use sdm_metrics::units::Bytes;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runs `f` on a fresh thread so held-lock state from a caught panic
    /// cannot leak into other tests sharing this thread.
    fn on_fresh_thread<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
        std::thread::spawn(f)
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e))
    }

    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    /// Seeded violation 1: two locks acquired in opposite orders on one
    /// thread. The second ordering closes a cycle in the global
    /// acquired-while-held graph and must panic *before* blocking — this
    /// interleaving would not deadlock, but two threads running the two
    /// orderings concurrently can, so the inversion itself is the bug.
    #[test]
    fn lock_order_inversion_is_detected() {
        on_fresh_thread(|| {
            let shard_state = TrackedMutex::new("disc-shard-state", ());
            let completion_q = TrackedMutex::new("disc-completion-queue", ());
            {
                let _s = shard_state.lock();
                let _c = completion_q.lock(); // establishes state → queue
            }
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _c = completion_q.lock();
                let _s = shard_state.lock(); // queue → state: inversion
            }))
            .expect_err("inverted acquisition order must panic, not proceed");
            let msg = panic_message(err);
            assert!(msg.contains("lock order inversion"), "diagnostic: {msg}");
            assert!(
                msg.contains("disc-shard-state") && msg.contains("disc-completion-queue"),
                "diagnostic must name both lock classes: {msg}"
            );
        });
    }

    /// Seeded violation 2: an SM submission issued while a stripe lock is
    /// held. The real submit site is inside the memory manager, so the
    /// scenario is reproduced the way it would actually happen — caller
    /// code inside a `lookup_with` closure reaching a submit boundary —
    /// with `assert_no_locks_held` standing in for `engine.submit`.
    #[test]
    fn stripe_lock_held_across_submit_is_detected() {
        on_fresh_thread(|| {
            let tier = SharedRowTier::new(Bytes::from_kib(64), 4);
            let key = sdm_cache::RowKey::new(1, 7);
            assert!(tier.insert(key, &[9u8; 32], 0));
            let err = catch_unwind(AssertUnwindSafe(|| {
                tier.lookup_with(&key, 1, |_bytes| {
                    // Inside the closure the stripe lock is held — this is
                    // the "held across IO submit" contract violation.
                    assert_no_locks_held("SM submit boundary (seeded violation)");
                });
            }))
            .expect_err("submit boundary under a stripe lock must panic");
            let msg = panic_message(err);
            assert!(
                msg.contains("lock discipline violation"),
                "diagnostic: {msg}"
            );
            assert!(
                msg.contains("shared-tier-stripe"),
                "diagnostic must name the held stripe lock: {msg}"
            );
            // Detection must not corrupt the registry: after the caught
            // panic the guard has been dropped and the boundary is clean.
            assert!(LockRegistry::held_by_current_thread().is_empty());
            assert_no_locks_held("after recovery");
        });
    }

    /// The stripe locks really are tracked end to end: a lookup registers
    /// on the thread's held-lock stack while the closure runs and leaves
    /// nothing behind afterwards.
    #[test]
    fn stripe_locks_register_on_the_held_stack() {
        on_fresh_thread(|| {
            let tier = SharedRowTier::new(Bytes::from_kib(64), 2);
            let key = sdm_cache::RowKey::new(0, 3);
            tier.insert(key, &[1u8; 16], 0);
            let mut held_inside = Vec::new();
            tier.lookup_with(&key, 0, |_| {
                held_inside = LockRegistry::held_by_current_thread();
            });
            assert_eq!(held_inside, vec!["shared-tier-stripe"]);
            assert!(LockRegistry::held_by_current_thread().is_empty());
        });
    }
}

/// The real pipeline obeys the discipline: a full serving run — exact
/// batching, relaxed (overlapped) batching, and the shared tier enabled
/// across shards — passes through the manager's `assert_no_locks_held`
/// submit hook on every SM miss without tripping it. In debug builds this
/// is the "clean run" half of the detection story; in release it is a
/// plain regression test.
#[test]
fn full_pipeline_runs_clean_under_lock_tracking() {
    use dlrm::model_zoo;
    use sdm_core::{SdmConfig, SdmSystem, ServingHost};
    use sdm_metrics::units::Bytes;
    use workload::{QueryGenerator, RoutingPolicy, WorkloadConfig};

    let model = model_zoo::tiny(3, 2, 500);
    let queries = {
        let cfg = WorkloadConfig {
            item_batch: model.item_batch.min(8),
            ..WorkloadConfig::skewed(48, 1.1)
        };
        QueryGenerator::new(&model.tables, cfg, 71)
            .unwrap()
            .generate(48)
    };
    // Small private caches force SM traffic, so the submit hook actually
    // executes; the shared tier puts stripe locks on the serving path.
    let mut config = SdmConfig::for_tests();
    config.cache.row_cache_budget = Bytes::from_kib(64);
    config.cache.pooled_cache_budget = Bytes::ZERO;

    let mut system = SdmSystem::build(&model, config.clone(), 71).unwrap();
    system.run_batch(&queries).unwrap();
    assert!(
        system.manager().stats().sm_reads > 0,
        "exact: no SM traffic"
    );

    let relaxed = config.clone().with_relaxed_batching(4);
    let mut host = ServingHost::build(&model, &relaxed, 71, 2, RoutingPolicy::UserSticky).unwrap();
    host.run_batch(&queries).unwrap();
    assert!(host.stats().sm_reads > 0, "relaxed: no SM traffic");

    let tiered = config.with_shared_tier(Bytes::from_mib(2));
    let mut host = ServingHost::build(&model, &tiered, 71, 4, RoutingPolicy::UserSticky).unwrap();
    host.run_batch(&queries).unwrap();
    let stats = host.stats();
    assert!(stats.sm_reads > 0, "tiered: no SM traffic");
    assert!(
        stats.shared_tier_hits > 0,
        "tiered: stripe locks never exercised"
    );
}

/// Release builds must pay nothing for the instrumentation: `TrackedMutex`
/// is layout-identical to `std::sync::Mutex` (the debug-only registry,
/// class ids, and guards do not exist). The bench gate (`exp_hotpath
/// --check`) enforces the runtime half of this claim.
#[cfg(not(debug_assertions))]
#[test]
fn release_tracked_mutex_is_a_transparent_mutex() {
    use std::mem::{align_of, size_of};
    use std::sync::Mutex;
    assert_eq!(
        size_of::<TrackedMutex<[u64; 4]>>(),
        size_of::<Mutex<[u64; 4]>>()
    );
    assert_eq!(
        align_of::<TrackedMutex<[u64; 4]>>(),
        align_of::<Mutex<[u64; 4]>>()
    );
    assert_eq!(size_of::<TrackedMutex<()>>(), size_of::<Mutex<()>>());
}

/// Keeps the debug/release split honest in *both* build profiles: the
/// tracked wrapper always exposes `new(name, value)` + `lock()`, so crates
/// can use it unconditionally.
#[test]
fn tracked_mutex_api_is_profile_independent() {
    let m = TrackedMutex::new("profile-independent", 41u32);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 42);
}

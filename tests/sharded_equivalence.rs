//! Sharded-serving equivalence: a `ServingHost` must produce, per query
//! id, the same scores as the single-stream `run_batch` baseline — no
//! matter how many shards serve the batch or which routing policy
//! partitions it — and its cache counters must obey the conservation laws
//! partitioning cannot break.
//!
//! What is (and isn't) invariant under sharding:
//!
//! * **Scores** — invariant up to f32 reassociation. Shards are seeded
//!   identically, so every replica materialises bit-identical tables and
//!   MLPs, and each query pools exactly the same row values. The
//!   *summation order* is not invariant, though: the hot path accumulates
//!   row-cache hits during the index scan and misses later as their IO
//!   completions drain (a deliberate PR-2 overlap optimisation), so a
//!   different hit/miss split — which is what sharding changes — pools the
//!   same values in a different order. Multi-shard scores are therefore
//!   compared within a tight reassociation tolerance, and a 1-shard host
//!   is asserted bit-exact. (The pooled-embedding cache adds a second
//!   order effect — it is keyed on the index *multiset* — so the main
//!   sweep disables it and a separate case covers the pooled-enabled
//!   path.)
//! * **Per-operator / per-row totals** — `pooled_ops`, `fm_direct_lookups`
//!   and `pruned_zero_rows` are decided per query, so their totals are
//!   invariant; `row_cache_hits + sm_reads` (every SM row access is exactly
//!   one of the two) is invariant too. The hit/miss *split* is not — that
//!   is precisely the cache-contention effect measured multi-stream QPS
//!   exists to capture.
//! * **1 shard** — everything is invariant: a single-shard host divides
//!   nothing and runs today's `run_batch` inline, bit for bit, latencies
//!   and clock included.

use dlrm::model_zoo;
use sdm_core::{SdmConfig, SdmSystem, ServingHost};
use sdm_metrics::units::Bytes;
use workload::{Query, QueryGenerator, RoutingPolicy, WorkloadConfig};

const SHARD_COUNTS: &[usize] = &[1, 2, 4];
const POLICIES: &[RoutingPolicy] = &[RoutingPolicy::RoundRobin, RoutingPolicy::UserSticky];

fn queries_for(model: &dlrm::ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch.min(8),
        // Small population so users repeat and sticky routing has
        // per-shard locality to exploit.
        user_population: 200,
        ..WorkloadConfig::default()
    };
    QueryGenerator::new(&model.tables, cfg, seed)
        .unwrap()
        .generate(count)
}

fn scaled_config() -> SdmConfig {
    SdmConfig {
        device_capacity: Bytes::from_mib(64),
        cache: sdm_cache::CacheConfig::with_total_budget(Bytes::from_mib(4)),
        ..SdmConfig::for_tests()
    }
}

/// The main sweep config: pooled cache off (see module docs).
fn exact_config() -> SdmConfig {
    let mut config = scaled_config();
    config.cache.pooled_cache_budget = Bytes::ZERO;
    config
}

/// Asserts two score slices are equal up to f32 summation reassociation:
/// same values pooled in a (possibly) different order, then passed through
/// the same MLPs.
fn assert_scores_close(got: &[f32], want: &[f32], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: score count");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        let tol = 1e-4 * a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "{context}: score {i} diverges beyond reassociation tolerance: {a} vs {b}"
        );
    }
}

/// Runs `queries` through the single-stream baseline and through sharded
/// hosts at every `SHARD_COUNTS` × `POLICIES` combination, asserting score
/// equivalence per query id and the partition-invariant counter totals.
fn assert_sharding_equivalent(model: &dlrm::ModelConfig, config: &SdmConfig, seed: u64) {
    let queries = queries_for(model, 48, seed);
    let mut baseline = SdmSystem::build(model, config.clone(), seed).unwrap();
    let report = baseline.run_batch(&queries).unwrap();
    assert_eq!(report.queries, queries.len() as u64);
    let base = baseline.manager().stats().clone();

    for &shards in SHARD_COUNTS {
        for &policy in POLICIES {
            let mut host = ServingHost::build(model, config, seed, shards, policy).unwrap();
            let host_report = host.run_batch(&queries).unwrap();
            assert_eq!(host_report.queries, queries.len() as u64);
            assert_eq!(host.len(), baseline.batch_len());

            // Scores per query id: bit-exact at 1 shard, reassociation
            // tolerance beyond (see module docs).
            for i in 0..queries.len() {
                if shards == 1 {
                    assert_eq!(
                        host.scores(i),
                        baseline.batch_scores(i),
                        "{}: scores diverge at query {i} (1 shard, {policy:?})",
                        model.name
                    );
                } else {
                    assert_scores_close(
                        host.scores(i),
                        baseline.batch_scores(i),
                        &format!("{}: query {i} ({shards} shards, {policy:?})", model.name),
                    );
                }
            }

            // Partition-invariant counter totals.
            let agg = host.stats();
            let tag = format!("{} ({shards} shards, {policy:?})", model.name);
            assert_eq!(agg.pooled_ops, base.pooled_ops, "{tag}: pooled_ops");
            assert_eq!(
                agg.fm_direct_lookups, base.fm_direct_lookups,
                "{tag}: fm_direct_lookups"
            );
            assert_eq!(
                agg.pruned_zero_rows, base.pruned_zero_rows,
                "{tag}: pruned_zero_rows"
            );
            assert_eq!(
                agg.row_cache_hits + agg.sm_reads,
                base.row_cache_hits + base.sm_reads,
                "{tag}: SM row accesses"
            );

            // A single-shard host *is* the baseline: latencies, clock and
            // the full counter block match exactly.
            if shards == 1 {
                for i in 0..queries.len() {
                    assert_eq!(host.latency(i), baseline.batch_latency(i), "{tag}: latency");
                }
                assert_eq!(host.shard(0).now(), baseline.now(), "{tag}: clock");
                assert_eq!(agg.row_cache_hits, base.row_cache_hits, "{tag}: hits");
                assert_eq!(agg.sm_reads, base.sm_reads, "{tag}: sm_reads");
                assert_eq!(
                    agg.pooled_cache_hits, base.pooled_cache_hits,
                    "{tag}: pooled hits"
                );
                assert_eq!(agg.sm_bytes_read, base.sm_bytes_read, "{tag}: sm bytes");
                assert_eq!(agg.sm_bus_bytes, base.sm_bus_bytes, "{tag}: bus bytes");
                assert_eq!(agg.io_time, base.io_time, "{tag}: io time");
                assert_eq!(agg.pooling_time, base.pooling_time, "{tag}: pooling time");
                assert_eq!(
                    host_report.mean_latency, report.mean_latency,
                    "{tag}: mean latency"
                );
                assert_eq!(
                    host_report.p99_latency, report.p99_latency,
                    "{tag}: p99 latency"
                );
            }
        }
    }
}

#[test]
fn tiny_model_sharding_is_equivalent() {
    assert_sharding_equivalent(&model_zoo::tiny(3, 2, 500), &exact_config(), 41);
}

#[test]
fn tiny_pruned_model_sharding_is_equivalent() {
    let mut model = model_zoo::tiny(2, 1, 400);
    model.tables[0].pruned_fraction = 0.4;
    assert_sharding_equivalent(&model, &exact_config(), 42);
}

#[test]
fn m1_scaled_sharding_is_equivalent() {
    let model = model_zoo::scaled_model(&model_zoo::m1(), 400_000, 60.0);
    assert_sharding_equivalent(&model, &exact_config(), 43);
}

#[test]
fn m2_scaled_sharding_is_equivalent() {
    let model = model_zoo::scaled_model(&model_zoo::m2(), 400_000, 60.0);
    assert_sharding_equivalent(&model, &exact_config(), 44);
}

#[test]
fn m3_scaled_sharding_is_equivalent() {
    // M3 is the terabyte-scale model (2700 tables); sharding decisions are
    // made per query and equivalence per embedding operator, so a subset of
    // its tables exercises the same code paths at a fraction of the cost.
    let mut model = model_zoo::scaled_model(&model_zoo::m3(), 4_000_000, 300.0);
    let user: Vec<_> = model
        .tables
        .iter()
        .filter(|t| t.kind == embedding::TableKind::User)
        .take(40)
        .cloned()
        .collect();
    let item: Vec<_> = model
        .tables
        .iter()
        .filter(|t| t.kind == embedding::TableKind::Item)
        .take(20)
        .cloned()
        .collect();
    model.tables = user.into_iter().chain(item).collect();
    assert_sharding_equivalent(&model, &exact_config(), 45);
}

#[test]
fn pooled_cache_enabled_sharding_keeps_scores_equivalent() {
    // With the pooled-embedding cache on, a hit replays a previously
    // pooled vector — same values, possibly a different summation order —
    // so the reassociation tolerance applies at every shard count except
    // one, where the host is the baseline bit for bit.
    let model = model_zoo::tiny(3, 2, 500);
    let config = scaled_config();
    let queries = queries_for(&model, 48, 46);
    let mut baseline = SdmSystem::build(&model, config.clone(), 46).unwrap();
    baseline.run_batch(&queries).unwrap();
    let base = baseline.manager().stats().clone();
    for &shards in SHARD_COUNTS {
        for &policy in POLICIES {
            let mut host = ServingHost::build(&model, &config, 46, shards, policy).unwrap();
            host.run_batch(&queries).unwrap();
            for i in 0..queries.len() {
                if shards == 1 {
                    assert_eq!(
                        host.scores(i),
                        baseline.batch_scores(i),
                        "scores diverge at query {i} (1 shard, {policy:?})"
                    );
                } else {
                    assert_scores_close(
                        host.scores(i),
                        baseline.batch_scores(i),
                        &format!("pooled-on query {i} ({shards} shards, {policy:?})"),
                    );
                }
            }
            let agg = host.stats();
            assert_eq!(agg.pooled_ops, base.pooled_ops);
            assert_eq!(agg.fm_direct_lookups, base.fm_direct_lookups);
        }
    }
}

#[test]
fn sticky_routing_concentrates_cache_locality() {
    // The reason user-sticky routing exists (paper Figure 4c): pinning a
    // user's repeating sequences to one shard must not *lower* the
    // aggregate row-cache hit count relative to spraying them round-robin
    // across shards. (With divided per-shard budgets the two policies see
    // the same total capacity, so this compares pure locality.)
    let model = model_zoo::tiny(2, 1, 500);
    let config = exact_config();
    let queries = queries_for(&model, 160, 47);
    let mut hits = Vec::new();
    for &policy in POLICIES {
        let mut host = ServingHost::build(&model, &config, 47, 4, policy).unwrap();
        host.run_batch(&queries).unwrap();
        hits.push(host.stats().row_cache_hits);
    }
    let (rr, sticky) = (hits[0], hits[1]);
    assert!(
        sticky >= rr,
        "sticky routing lost locality: {sticky} hits vs round-robin {rr}"
    );
}

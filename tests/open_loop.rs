//! Open-loop serving integration tests: load-curve determinism, dynamic-
//! batcher invariants under randomised traffic, and the batch-mode median
//! regression that the interpolated histogram percentiles fixed.

use dlrm::model_zoo;
use proptest::prelude::*;
use sdm_bench::{bench_sdm_config, measure_batch_modes, measure_load_curve, queries_for, scaled};
use sdm_core::{CloseReason, Frontend, FrontendConfig, SdmConfig, ServingHost};
use sdm_metrics::SimDuration;
use workload::{ArrivalGenerator, ArrivalProcess, RoutingPolicy};

/// The full pipeline — arrival generator, front end, serving host,
/// load-curve report — is a pure function of its seeds: two runs agree
/// bit-for-bit, and changing only the arrival seed perturbs the curve.
#[test]
fn load_curve_is_deterministic_for_fixed_seeds() {
    let model = model_zoo::tiny(3, 2, 400);
    let queries = queries_for(&model, 64, 11);
    let frontend = FrontendConfig {
        max_batch: 8,
        max_batch_delay: SimDuration::from_millis(2),
        max_queue_wait: SimDuration::from_millis(20),
        token_bucket: None,
    };
    let rates = [200.0, 20_000.0];
    let config = SdmConfig::for_tests();
    let a = measure_load_curve(&model, &config, &queries, &frontend, &rates, 17);
    let b = measure_load_curve(&model, &config, &queries, &frontend, &rates, 17);
    assert_eq!(
        a, b,
        "identical seeds must reproduce the load curve exactly"
    );
    assert_eq!(a.len(), rates.len());
    let c = measure_load_curve(&model, &config, &queries, &frontend, &rates, 18);
    assert_ne!(a, c, "a different arrival seed must perturb the curve");
}

/// Far below capacity nothing is shed and every arrival is served.
#[test]
fn trickle_traffic_is_served_in_full() {
    let model = model_zoo::tiny(2, 1, 300);
    let queries = queries_for(&model, 24, 9);
    let mut host = ServingHost::build(
        &model,
        &SdmConfig::for_tests(),
        9,
        1,
        RoutingPolicy::UserSticky,
    )
    .unwrap();
    let mut frontend = Frontend::new(FrontendConfig {
        max_batch: 8,
        max_batch_delay: SimDuration::from_millis(1),
        max_queue_wait: SimDuration::from_millis(500),
        token_bucket: None,
    })
    .unwrap();
    let mut arrivals =
        ArrivalGenerator::new(ArrivalProcess::Poisson { rate_qps: 20.0 }, 5).unwrap();
    let report = frontend.run(&mut host, &queries, &mut arrivals).unwrap();
    assert_eq!(report.offered, queries.len() as u64);
    assert_eq!(report.served, report.offered);
    assert_eq!(report.shed(), 0);
}

proptest! {
    // Case count and RNG seed pinned for deterministic CI (see
    // tests/properties.rs). Each case drives a real single-shard host, so
    // the count stays modest.
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0x5d11_0006))]

    /// Whatever the traffic and batcher settings, the dynamic batcher
    /// honours its envelope: no batch exceeds `max_batch`, no batch closes
    /// later than its oldest query's deadline, batches dispatch in order,
    /// and the per-query bookkeeping conserves arrivals.
    #[test]
    fn dynamic_batcher_honours_its_envelope(
        rate_exp in 1.0f64..6.0,
        max_batch in 1usize..12,
        delay_us in 100u64..20_000,
        slo_us in 0u64..100_000,
        arrival_seed in 0u64..1_000,
    ) {
        let rate_qps = 10f64.powf(rate_exp);
        let model = model_zoo::tiny(2, 1, 300);
        let queries = queries_for(&model, 40, 9);
        let mut host =
            ServingHost::build(&model, &SdmConfig::for_tests(), 9, 1, RoutingPolicy::UserSticky)
                .unwrap();
        let config = FrontendConfig {
            max_batch,
            max_batch_delay: SimDuration::from_micros(delay_us),
            max_queue_wait: SimDuration::from_micros(slo_us),
            token_bucket: None,
        };
        let mut frontend = Frontend::new(config).unwrap();
        let mut arrivals =
            ArrivalGenerator::new(ArrivalProcess::Poisson { rate_qps }, arrival_seed).unwrap();
        let report = frontend.run(&mut host, &queries, &mut arrivals).unwrap();

        // Conservation: every arrival is either served or shed, and the
        // served-rate can never exceed the offered rate.
        prop_assert_eq!(report.offered, queries.len() as u64);
        prop_assert_eq!(report.served + report.shed(), report.offered);
        prop_assert!(report.served_qps <= report.offered_qps + 1e-9);

        // Batch envelope.
        let mut dispatched = 0u64;
        let mut last_close = None;
        for batch in frontend.batch_log() {
            prop_assert!(batch.len >= 1 && batch.len <= max_batch);
            if batch.reason == CloseReason::Full {
                prop_assert_eq!(batch.len, max_batch);
            }
            prop_assert!(
                batch.closed_at.duration_since(batch.oldest_arrival) <= config.max_batch_delay,
                "batch closed {:?} after its oldest arrival (deadline {:?})",
                batch.closed_at.duration_since(batch.oldest_arrival),
                config.max_batch_delay
            );
            prop_assert!(batch.started_at >= batch.closed_at);
            prop_assert!(batch.completed_at >= batch.started_at);
            if let Some(prev) = last_close {
                prop_assert!(batch.closed_at >= prev, "batches must dispatch in close order");
            }
            last_close = Some(batch.closed_at);
            dispatched += batch.len as u64;
        }
        prop_assert_eq!(dispatched, report.served);
    }
}

/// Regression for the histogram percentile fix: on the cold M1-scaled
/// stream the exact and relaxed(8) medians are close enough that the old
/// bucket-lower-bound percentile collapsed them into the same value, hiding
/// the latency cost of overlapping. With within-bucket interpolation the
/// two medians are distinct (and both positive).
#[test]
fn batch_mode_medians_are_distinguishable_on_m1() {
    let m1 = scaled(&model_zoo::m1());
    let queries = queries_for(&m1, 256, 109);
    let report = measure_batch_modes(&m1, &bench_sdm_config(), &queries, 8);
    let exact = report.exact().expect("exact side measured");
    let relaxed = report.relaxed().expect("relaxed side measured");
    assert!(!exact.p50_latency.is_zero());
    assert!(!relaxed.p50_latency.is_zero());
    assert_ne!(
        exact.p50_latency, relaxed.p50_latency,
        "interpolated p50s must separate the two execution modes"
    );
}

//! Steady-state allocation audit: on a fully warmed cache, the serving hot
//! path — `run_query_into` with a recycled result, and `run_batch` with
//! warm scratch — performs **zero heap allocations per query**.
//!
//! A counting `GlobalAlloc` wrapper reports every allocation into
//! `sdm_metrics::alloc_hook`; the assertions below turn the hook on around
//! the measured serving loops only, so test-harness and setup allocations
//! do not pollute the count.

use dlrm::{model_zoo, QueryResult};
use io_engine::RetryConfig;
use sdm_cache::SharedRowTier;
use sdm_core::{
    BatchMode, Frontend, FrontendConfig, PoolKernel, SdmConfig, SdmSystem, ServingHost, Shard,
    TokenBucketConfig,
};
use sdm_metrics::alloc_hook;
use sdm_metrics::units::Bytes;
use sdm_metrics::SimDuration;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::Arc;
use workload::{
    ArrivalGenerator, ArrivalProcess, Query, QueryGenerator, RoutingPolicy, WorkloadConfig,
};

/// System allocator wrapper that reports into the sdm-metrics hook.
struct CountingAllocator;

// SAFETY: defers every operation to the system allocator unchanged; the
// hook call is side-effect-only bookkeeping.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same contract as `System.alloc`; the layout is forwarded
    // unchanged and the hook only touches an atomic counter.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        alloc_hook::note_alloc(layout.size());
        System.alloc(layout)
    }

    // SAFETY: same contract as `System.alloc_zeroed`; the layout is
    // forwarded unchanged and the hook only touches an atomic counter.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        alloc_hook::note_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    // SAFETY: same contract as `System.realloc`; pointer, layout and size
    // are forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth is a fresh allocation from the hot path's point of view.
        if new_size > layout.size() {
            alloc_hook::note_alloc(new_size);
        }
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same contract as `System.dealloc`; pointer and layout are
    // forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn queries_for(model: &dlrm::ModelConfig, count: usize, seed: u64) -> Vec<Query> {
    let cfg = WorkloadConfig {
        item_batch: model.item_batch,
        // Small population so the stream re-hits the same index sequences
        // and the caches genuinely warm up.
        user_population: 8,
        ..WorkloadConfig::default()
    };
    QueryGenerator::new(&model.tables, cfg, seed)
        .unwrap()
        .generate(count)
}

/// Warm every level: row cache, pooled cache, scratch-buffer capacity,
/// batch-scratch capacity — by running the exact stream we will measure.
fn warmed_system(
    model: &dlrm::ModelConfig,
    queries: &[Query],
    seed: u64,
) -> (SdmSystem, QueryResult) {
    let mut system = SdmSystem::build(model, SdmConfig::for_tests(), seed).unwrap();
    let mut result = QueryResult::default();
    for _ in 0..3 {
        for q in queries {
            system.run_query_into(q, &mut result).unwrap();
        }
    }
    system.run_batch(queries).unwrap();
    system.run_batch(queries).unwrap();
    (system, result)
}

// The two measurements share one test because the allocation hook is
// process-global and the harness runs tests concurrently.
#[test]
fn warmed_hot_path_performs_zero_allocations() {
    let model = model_zoo::tiny(3, 2, 400);
    let queries = queries_for(&model, 12, 7);
    let (mut system, mut result) = warmed_system(&model, &queries, 7);

    // --- run_query_into with a recycled QueryResult ---
    alloc_hook::reset();
    alloc_hook::set_enabled(true);
    for q in &queries {
        system.run_query_into(q, &mut result).unwrap();
    }
    alloc_hook::set_enabled(false);
    let per_query = alloc_hook::allocations();
    assert_eq!(
        per_query,
        0,
        "steady-state run_query allocated {per_query} times over {} queries \
         ({} bytes)",
        queries.len(),
        alloc_hook::allocated_bytes()
    );

    // --- run_batch over the same warmed stream ---
    alloc_hook::reset();
    alloc_hook::set_enabled(true);
    let report = system.run_batch(&queries).unwrap();
    alloc_hook::set_enabled(false);
    let batch_allocs = alloc_hook::allocations();
    assert_eq!(
        batch_allocs, 0,
        "steady-state run_batch allocated {batch_allocs} times for {} queries",
        report.queries
    );
    assert_eq!(report.queries, queries.len() as u64);

    // Sanity: the caches really were hot (this is what makes zero
    // allocations meaningful — no IO path, pure cache serving).
    let stats = system.manager().stats();
    assert!(
        stats.row_cache_hits + stats.pooled_cache_hits > 0,
        "stream never hit a cache; the measurement is vacuous"
    );

    // --- relaxed (overlapped) run_batch over a warmed stream ---
    // The pipeline's slot pool, pending-op slab and accumulation buffers
    // all reuse capacity, so the overlapped executor is as allocation-free
    // as the exact one once warmed.
    let relaxed_cfg = SdmConfig::for_tests().with_batch_mode(BatchMode::Relaxed {
        max_inflight_queries: 4,
    });
    let mut relaxed = SdmSystem::build(&model, relaxed_cfg, 7).unwrap();
    relaxed.run_batch(&queries).unwrap();
    relaxed.run_batch(&queries).unwrap();
    relaxed.run_batch(&queries).unwrap();
    alloc_hook::reset();
    alloc_hook::set_enabled(true);
    let relaxed_report = relaxed.run_batch(&queries).unwrap();
    alloc_hook::set_enabled(false);
    let relaxed_allocs = alloc_hook::allocations();
    assert_eq!(
        relaxed_allocs, 0,
        "steady-state relaxed run_batch allocated {relaxed_allocs} times for {} queries",
        relaxed_report.queries
    );
    assert_eq!(relaxed_report.queries, queries.len() as u64);

    // --- warmed hot path with the resilience machinery armed ---
    // Bounded retries, a per-IO deadline and hedged reads compiled in and
    // *enabled* (not the inert defaults) on fault-free devices: the warmed
    // no-fault serving loop must stay allocation-free with the resilience
    // layer in the build.
    let mut resilient_cfg = SdmConfig::for_tests();
    resilient_cfg.io.retry = RetryConfig {
        max_attempts: 4,
        io_deadline: SimDuration::from_millis(50),
        hedge_after: Some(SimDuration::from_millis(10)),
        ..RetryConfig::default()
    };
    let mut resilient = SdmSystem::build(&model, resilient_cfg, 7).unwrap();
    for _ in 0..3 {
        for q in &queries {
            resilient.run_query_into(q, &mut result).unwrap();
        }
    }
    resilient.run_batch(&queries).unwrap();
    resilient.run_batch(&queries).unwrap();
    alloc_hook::reset();
    alloc_hook::set_enabled(true);
    for q in &queries {
        resilient.run_query_into(q, &mut result).unwrap();
    }
    resilient.run_batch(&queries).unwrap();
    alloc_hook::set_enabled(false);
    let resilient_allocs = alloc_hook::allocations();
    assert_eq!(
        resilient_allocs,
        0,
        "steady-state serving with armed resilience allocated {resilient_allocs} times \
         over {} queries",
        queries.len()
    );
    assert_eq!(
        resilient.manager().stats().degraded_rows,
        0,
        "fault-free devices must never degrade a row"
    );

    // --- warmed serving through the shared tier ---
    // A tiny private row cache forces private misses every query; the
    // shared tier (populated by the warmup passes' promotions) then serves
    // them. The stripe lookup — hash, mutex lock, intrusive-LRU touch,
    // closure accumulate out of the stripe arena — must allocate nothing.
    let mut tier_cfg = SdmConfig::for_tests();
    tier_cfg.cache.row_cache_budget = Bytes::from_kib(2);
    tier_cfg.cache.pooled_cache_budget = Bytes::ZERO;
    let tier = Arc::new(SharedRowTier::new(Bytes::from_mib(4), 8));
    let mut shard = Shard::build(&model, tier_cfg, 7).unwrap();
    shard.attach_shared_tier(Arc::clone(&tier), 0);
    for _ in 0..3 {
        for q in &queries {
            shard.run_query_into(q, &mut result).unwrap();
        }
    }
    let hits_before = shard.manager().stats().shared_tier_hits;
    alloc_hook::reset();
    alloc_hook::set_enabled(true);
    for q in &queries {
        shard.run_query_into(q, &mut result).unwrap();
    }
    alloc_hook::set_enabled(false);
    let tier_allocs = alloc_hook::allocations();
    assert_eq!(
        tier_allocs,
        0,
        "steady-state shared-tier serving allocated {tier_allocs} times over {} queries",
        queries.len()
    );
    assert!(
        shard.manager().stats().shared_tier_hits > hits_before,
        "measured loop never hit the shared tier; the measurement is vacuous"
    );

    // --- warmed open-loop front end: admission → batch → serve ---
    // The front end owns its pick list, logs and latency histogram; the
    // host owns the selection scratch. A repeat of the same seeded arrival
    // stream therefore touches only retained capacity: token-bucket
    // refill, SLO check, batch close and dispatch allocate nothing.
    let frontend_config = FrontendConfig {
        max_batch: 4,
        max_batch_delay: SimDuration::from_micros(500),
        max_queue_wait: SimDuration::from_millis(50),
        token_bucket: Some(TokenBucketConfig {
            capacity: 64.0,
            refill_per_sec: 1_000_000.0,
        }),
    };
    let mut host = ServingHost::build(
        &model,
        &SdmConfig::for_tests(),
        7,
        1,
        RoutingPolicy::UserSticky,
    )
    .unwrap();
    let mut frontend = Frontend::new(frontend_config).unwrap();
    let open_loop = ArrivalProcess::Poisson { rate_qps: 5_000.0 };
    for _ in 0..3 {
        let mut arrivals = ArrivalGenerator::new(open_loop, 21).unwrap();
        frontend.run(&mut host, &queries, &mut arrivals).unwrap();
    }
    let mut arrivals = ArrivalGenerator::new(open_loop, 21).unwrap();
    alloc_hook::reset();
    alloc_hook::set_enabled(true);
    let frontend_report = frontend.run(&mut host, &queries, &mut arrivals).unwrap();
    alloc_hook::set_enabled(false);
    let frontend_allocs = alloc_hook::allocations();
    assert_eq!(
        frontend_allocs,
        0,
        "steady-state open-loop serving allocated {frontend_allocs} times over {} arrivals",
        queries.len()
    );
    assert_eq!(frontend_report.offered, queries.len() as u64);
    assert!(
        frontend_report.served > 0,
        "open-loop run served nothing; the measurement is vacuous"
    );

    // --- warmed hot path with the pooling kernel forced to scalar ---
    // Kernel dispatch is resolved once at build time into a Copy handle, so
    // selecting a kernel explicitly (the SIMD A/B lever) must not add any
    // per-query work: the scalar-forced system is as allocation-free as the
    // auto-dispatched one.
    let scalar_cfg = SdmConfig::for_tests().with_pool_kernel(PoolKernel::Scalar);
    let mut scalar_system = SdmSystem::build(&model, scalar_cfg, 7).unwrap();
    for _ in 0..3 {
        for q in &queries {
            scalar_system.run_query_into(q, &mut result).unwrap();
        }
    }
    scalar_system.run_batch(&queries).unwrap();
    scalar_system.run_batch(&queries).unwrap();
    alloc_hook::reset();
    alloc_hook::set_enabled(true);
    for q in &queries {
        scalar_system.run_query_into(q, &mut result).unwrap();
    }
    scalar_system.run_batch(&queries).unwrap();
    alloc_hook::set_enabled(false);
    let scalar_allocs = alloc_hook::allocations();
    assert_eq!(
        scalar_allocs,
        0,
        "steady-state scalar-kernel serving allocated {scalar_allocs} times over {} queries",
        queries.len()
    );
    assert_eq!(
        scalar_system.manager().kernel().name(),
        "scalar",
        "forced scalar kernel did not take effect"
    );

    // Control: the allocating run_query wrapper does allocate (the returned
    // QueryResult), proving the counter actually observes this code path.
    alloc_hook::reset();
    alloc_hook::set_enabled(true);
    let owned = system.run_query(&queries[0]).unwrap();
    alloc_hook::set_enabled(false);
    assert!(!owned.scores.is_empty());
    assert!(
        alloc_hook::allocations() > 0,
        "control failed: the counting allocator is not installed"
    );
}
